//! The deterministic discrete-event simulation core.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use ssbyz_sched::{EventQueue, TimerHandle, TimerWheel};
use ssbyz_types::{Duration, LocalTime, NodeBitSet, NodeId, RealTime};

use crate::clock::DriftClock;
use crate::network::{LinkBlock, LinkConfig, Partition, StormConfig};
use crate::process::{Ctx, Effect, Process};

/// A record emitted by a process via [`Ctx::observe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation<O> {
    /// The emitting node.
    pub node: NodeId,
    /// Real time of emission.
    pub real: RealTime,
    /// The node's local time at emission.
    pub local: LocalTime,
    /// The payload.
    pub event: O,
}

/// Aggregate simulation counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages handed to the network (counted per destination).
    pub sent: u64,
    /// Messages delivered to a live process.
    pub delivered: u64,
    /// Messages dropped by the storm.
    pub dropped: u64,
    /// Messages corrupted by the storm.
    pub corrupted: u64,
    /// Messages duplicated by the storm.
    pub duplicated: u64,
    /// Spurious messages injected by the storm.
    pub injected: u64,
    /// Messages suppressed by an explicit link block.
    pub blocked: u64,
    /// Messages swallowed because the destination was down.
    pub swallowed: u64,
    /// Per-tag send counts (when a tagger is installed).
    pub per_tag: BTreeMap<&'static str, u64>,
}

/// Which RNG stream layout the simulation draws from.
///
/// [`RngMode::Global`] (the default) is the original behaviour: one
/// seeded stream consumed in event-processing order. Every draw then
/// depends on the global interleaving of events, which is fine for a
/// single wheel but unshardable. [`RngMode::PerNode`] gives each node
/// its own stream (derived from the seed and the node's stable id via
/// [`stream_seed`]) plus one auxiliary stream for storm injection:
/// every draw is attributed to a node — routing draws to the sender,
/// handler draws to the handling node — so the sequence each node sees
/// depends only on that node's own event order. That is the keying the
/// sharded simulator ([`crate::par`]) relies on: draws derive from
/// stable ids, never from cross-node interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RngMode {
    /// One global stream in event-processing order (the original route).
    #[default]
    Global,
    /// One independent stream per node, plus an auxiliary stream for
    /// storm injection. Required by (and forced on by) the sharded
    /// simulator.
    PerNode,
}

/// Derives the seed of an independent per-lane RNG stream from the
/// simulation seed and a stable lane id (splitmix64 finalizer — the
/// same mixer the offline `rand` shim builds on). Lane 0 is the
/// auxiliary stream; node `i` uses lane `i + 1`.
#[must_use]
pub fn stream_seed(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The concrete stream set behind an [`RngMode`].
pub(crate) enum RngStreams {
    Global(StdRng),
    PerNode { nodes: Vec<StdRng>, aux: StdRng },
}

impl RngStreams {
    pub(crate) fn new(mode: RngMode, seed: u64, n: usize) -> Self {
        match mode {
            RngMode::Global => RngStreams::Global(StdRng::seed_from_u64(seed)),
            RngMode::PerNode => RngStreams::PerNode {
                nodes: (0..n)
                    .map(|i| StdRng::seed_from_u64(stream_seed(seed, i as u64 + 1)))
                    .collect(),
                aux: StdRng::seed_from_u64(stream_seed(seed, 0)),
            },
        }
    }

    /// The stream a draw attributed to `node` comes from.
    pub(crate) fn stream(&mut self, node: NodeId) -> &mut StdRng {
        match self {
            RngStreams::Global(r) => r,
            RngStreams::PerNode { nodes, .. } => &mut nodes[node.index()],
        }
    }

    /// The stream non-node draws (storm injection) come from.
    pub(crate) fn aux(&mut self) -> &mut StdRng {
        match self {
            RngStreams::Global(r) => r,
            RngStreams::PerNode { aux, .. } => aux,
        }
    }
}

/// Corruptor hook: may rewrite a storm-hit message (or eat it).
pub type Corruptor<M> = Box<dyn FnMut(M, &mut StdRng) -> Option<M> + Send>;

/// Spurious-message generator used during storms: returns
/// `(claimed sender, destination, payload)`. During an incoherent period
/// the network may fabricate traffic with forged identities — exactly what
/// a transient fault can leave in flight.
pub type Injector<M> = Box<dyn FnMut(&mut StdRng, usize) -> (NodeId, NodeId, M) + Send>;

pub(crate) enum EventKind<M> {
    /// Delivery of a (possibly broadcast-shared) payload to one node.
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: Arc<M>,
    },
    /// One batched broadcast fan-out: a single wheel entry carrying the
    /// shared payload and a destination bitmap. On expiry the payload is
    /// delivered to every destination in ascending id order — exactly the
    /// order n same-due per-destination entries would have popped in
    /// (equal due ⇒ FIFO by seq ⇒ this broadcast's insertion order, which
    /// was ascending id). An all-broadcast round occupies O(n) wheel
    /// entries instead of O(n²).
    BroadcastDeliver {
        from: NodeId,
        msg: Arc<M>,
        dests: NodeBitSet,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Injection,
    /// Scheduled end of a crash: if the node is still due to come back at
    /// this instant (it was not re-crashed meanwhile), clear the down
    /// mark and run its recovery hook.
    Recover {
        node: NodeId,
    },
}

/// How [`Ctx::broadcast`] fan-out is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BroadcastMode {
    /// One wheel entry per same-due destination batch (the default).
    #[default]
    Batched,
    /// The pre-batch path: one wheel entry per destination. Retained as
    /// the reference route for the A/B parity tests — both modes must
    /// produce identical observation streams and metrics from the same
    /// seed.
    PerDestination,
}

/// How same-instant deliveries are dispatched to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaveMode {
    /// Receiver-side coalescing (the default): on a **draw-free** instant
    /// (deterministic link delay in force, no storm active) the run loop
    /// drains every same-due delivery entry, then invokes each
    /// destination node once with its whole wave via
    /// [`Process::on_message_batch`]. On any instant where routing would
    /// draw randomness — jittered links, storm windows — the per-message
    /// path is used unchanged, so the seeded RNG stream is identical in
    /// both modes.
    ///
    /// Coalescing transposes dispatch from entry-major to
    /// destination-major *within one instant*: each node still receives
    /// its own arrivals in `(due, seq)` order, every metric counts the
    /// same messages, and non-delivery events (timers, injections,
    /// recoveries) keep their exact position — the drain stops at them.
    #[default]
    Coalesced,
    /// The pre-wave route: every delivery invokes
    /// [`Process::on_message`] separately, in global `(due, seq)` pop
    /// order. Retained as the reference side of the wave A/B parity
    /// tests.
    PerMessage,
}

pub(crate) struct NodeSlot<M, O> {
    pub(crate) process: Box<dyn Process<M, O>>,
    pub(crate) clock: DriftClock,
    /// Down (crashed / storm-disabled) until this real time.
    pub(crate) down_until: Option<RealTime>,
    /// Pending timers keyed by `(token, real-due ns)`: the handle lets a
    /// reschedule cancel the wheel entry outright instead of leaving
    /// stale garbage, and makes identical re-requests no-ops.
    pub(crate) timers: BTreeMap<(u64, u64), TimerHandle>,
}

/// Builder for a [`Simulation`].
pub struct SimBuilder<M, O> {
    seed: u64,
    link: LinkConfig,
    storm: Option<StormConfig>,
    corruptor: Option<Corruptor<M>>,
    injector: Option<Injector<M>>,
    tagger: Option<fn(&M) -> &'static str>,
    mode: BroadcastMode,
    wave_mode: WaveMode,
    rng_mode: RngMode,
    nodes: Vec<NodeSlot<M, O>>,
}

impl<M, O> SimBuilder<M, O> {
    /// Starts a builder with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimBuilder {
            seed,
            link: LinkConfig::default(),
            storm: None,
            corruptor: None,
            injector: None,
            tagger: None,
            mode: BroadcastMode::default(),
            wave_mode: WaveMode::default(),
            rng_mode: RngMode::default(),
            nodes: Vec::new(),
        }
    }

    /// Selects the RNG stream layout (defaults to [`RngMode::Global`]).
    #[must_use]
    pub fn rng_mode(mut self, mode: RngMode) -> Self {
        self.rng_mode = mode;
        self
    }

    /// Selects the broadcast fan-out scheduling mode (defaults to
    /// [`BroadcastMode::Batched`]).
    #[must_use]
    pub fn broadcast_mode(mut self, mode: BroadcastMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects how same-instant deliveries are dispatched (defaults to
    /// [`WaveMode::Coalesced`]).
    #[must_use]
    pub fn wave_mode(mut self, mode: WaveMode) -> Self {
        self.wave_mode = mode;
        self
    }

    /// Sets the steady-state link behaviour.
    #[must_use]
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Installs a transient-failure storm.
    #[must_use]
    pub fn storm(mut self, storm: StormConfig) -> Self {
        self.storm = Some(storm);
        self
    }

    /// Installs the storm corruptor hook.
    #[must_use]
    pub fn corruptor(mut self, c: Corruptor<M>) -> Self {
        self.corruptor = Some(c);
        self
    }

    /// Installs the storm spurious-message generator.
    #[must_use]
    pub fn injector(mut self, i: Injector<M>) -> Self {
        self.injector = Some(i);
        self
    }

    /// Installs a per-message tag function for metrics.
    #[must_use]
    pub fn tagger(mut self, t: fn(&M) -> &'static str) -> Self {
        self.tagger = Some(t);
        self
    }

    /// Adds a node with the given process and clock. Node ids are assigned
    /// in insertion order.
    #[must_use]
    pub fn node(mut self, process: Box<dyn Process<M, O>>, clock: DriftClock) -> Self {
        self.nodes.push(NodeSlot {
            process,
            clock,
            down_until: None,
            timers: BTreeMap::new(),
        });
        self
    }

    /// Finalizes the simulation.
    pub fn build(self) -> Simulation<M, O> {
        // Scale the wheel's tick to the link's delay bound (the paper's
        // δ/d horizon): most deliveries then land within the first
        // levels, where insert and cancel are single bucket pushes.
        let queue = TimerWheel::for_span_hint(self.link.delay_max.as_nanos());
        let n = self.nodes.len();
        let mut sim = Simulation {
            now: RealTime::ZERO,
            queue,
            nodes: self.nodes,
            link: self.link,
            storm: self.storm,
            blocks: Vec::new(),
            partition: None,
            delay_inflation: None,
            rngs: RngStreams::new(self.rng_mode, self.seed, n),
            corruptor: self.corruptor,
            injector: self.injector,
            tagger: self.tagger,
            observations: Vec::new(),
            metrics: Metrics::default(),
            started: false,
            events_processed: 0,
            scratch_outbox: Vec::new(),
            mode: self.mode,
            wave_mode: self.wave_mode,
            batch_scratch: Vec::new(),
            bitset_pool: Vec::new(),
            wave_group: Vec::new(),
            wave_batch: Vec::new(),
        };
        if sim.storm.is_some() && sim.injector.is_some() {
            sim.queue
                .insert(RealTime::ZERO.as_nanos(), EventKind::Injection);
        }
        sim
    }
}

/// A deterministic simulation of `n` nodes over a bounded-delay
/// authenticated network with drifting clocks.
///
/// # Example
///
/// ```
/// use ssbyz_simnet::{Ctx, DriftClock, LinkConfig, Process, SimBuilder};
/// use ssbyz_types::{Duration, NodeId, RealTime};
///
/// struct Echo;
/// impl Process<u32, u32> for Echo {
///     fn on_start(&mut self, ctx: &mut Ctx<'_, u32, u32>) {
///         if ctx.me() == NodeId::new(0) {
///             ctx.broadcast(1);
///         }
///     }
///     fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u32>, _from: NodeId, msg: &u32) {
///         ctx.observe(*msg);
///     }
///     // Same-instant arrivals can land as one coalesced wave. The
///     // default implementation loops `on_message` per arrival — bit
///     // -identical behavior for free; override it (as here) only to
///     // consume the whole batch in one pass, the way the engine
///     // adapter feeds a wave into a single triplet-table walk.
///     fn on_message_batch(
///         &mut self,
///         ctx: &mut Ctx<'_, u32, u32>,
///         batch: &[(NodeId, std::sync::Arc<u32>)],
///     ) {
///         for (_from, msg) in batch {
///             ctx.observe(**msg);
///         }
///     }
///     fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32, u32>, _token: u64) {}
/// }
///
/// let mut sim = SimBuilder::new(42)
///     .link(LinkConfig::fixed(Duration::from_millis(1)))
///     .node(Box::new(Echo), DriftClock::ideal())
///     .node(Box::new(Echo), DriftClock::ideal())
///     .build();
/// sim.run_until(RealTime::from_nanos(10_000_000));
/// assert_eq!(sim.observations().len(), 2); // both nodes got the broadcast
/// ```
pub struct Simulation<M, O> {
    pub(crate) now: RealTime,
    /// The hierarchical timer wheel holding every pending event
    /// (deliveries, timers, storm injections) in `(due, seq)` order.
    pub(crate) queue: TimerWheel<EventKind<M>>,
    pub(crate) nodes: Vec<NodeSlot<M, O>>,
    pub(crate) link: LinkConfig,
    pub(crate) storm: Option<StormConfig>,
    pub(crate) blocks: Vec<LinkBlock>,
    /// The partition currently in force, if any (fault injection).
    pub(crate) partition: Option<Partition>,
    /// Link-delay inflation `(num, den, until)`: sampled delays are scaled
    /// by `num/den` while `now < until` (fault injection). Applied after
    /// the RNG draw so the draw sequence — and thus every downstream
    /// random choice — is identical with and without the fault.
    pub(crate) delay_inflation: Option<(u64, u64, RealTime)>,
    pub(crate) rngs: RngStreams,
    corruptor: Option<Corruptor<M>>,
    injector: Option<Injector<M>>,
    pub(crate) tagger: Option<fn(&M) -> &'static str>,
    pub(crate) observations: Vec<Observation<O>>,
    pub(crate) metrics: Metrics,
    started: bool,
    pub(crate) events_processed: u64,
    /// Reused per-handler effect buffer: every dispatch borrows this Vec
    /// instead of allocating a fresh outbox per event.
    scratch_outbox: Vec<Effect<M, O>>,
    /// How broadcast fan-out is scheduled.
    mode: BroadcastMode,
    /// Reused open-batch buffer for one `route_broadcast` call: one entry
    /// per run of equal-due destinations. The bitmap is created lazily on
    /// the second destination of a run — a singleton run costs no bitset
    /// work at all, so jittered links (where dues rarely collide) pay
    /// only a comparison over the per-destination path.
    batch_scratch: Vec<(RealTime, NodeId, Option<NodeBitSet>)>,
    /// Recycled destination bitmaps — steady-state batched fan-out
    /// allocates no fresh bitsets.
    bitset_pool: Vec<NodeBitSet>,
    /// How same-instant deliveries are dispatched.
    pub(crate) wave_mode: WaveMode,
    /// Pooled drain buffer for one coalesced instant: the contiguous run
    /// of same-due delivery entries popped off the wheel before
    /// destination-major dispatch.
    wave_group: Vec<EventKind<M>>,
    /// Pooled per-node wave buffer handed to
    /// [`Process::on_message_batch`] — reference bumps only, reused
    /// across nodes and instants.
    wave_batch: Vec<(NodeId, Arc<M>)>,
}

impl<M: Clone, O> Simulation<M, O> {
    /// Current real time.
    #[must_use]
    pub fn now(&self) -> RealTime {
        self.now
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The clock of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn clock(&self, node: NodeId) -> &DriftClock {
        &self.nodes[node.index()].clock
    }

    /// All observations emitted so far.
    #[must_use]
    pub fn observations(&self) -> &[Observation<O>] {
        &self.observations
    }

    /// Drains the observation log.
    pub fn take_observations(&mut self) -> Vec<Observation<O>> {
        std::mem::take(&mut self.observations)
    }

    /// Aggregate counters.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Marks `node` down (unresponsive, losing all deliveries and timers)
    /// until the given real time.
    pub fn set_down_until(&mut self, node: NodeId, until: RealTime) {
        self.nodes[node.index()].down_until = Some(until);
    }

    /// Blocks the directed link `from → to` until the given real time.
    pub fn block_link(&mut self, from: NodeId, to: NodeId, until: RealTime) {
        self.blocks.push(LinkBlock { from, to, until });
    }

    /// Crashes `node` for `down_for`: deliveries are swallowed and timers
    /// dropped at fire time while down, and recovery is scheduled — at
    /// `now + down_for` the node's [`Process::on_recover`] hook runs so it
    /// can re-arm its periodic timers. Unlike the bare
    /// [`Simulation::set_down_until`], this models a full crash/recover
    /// cycle rather than a silent outage.
    pub fn crash_node(&mut self, node: NodeId, down_for: Duration) {
        let until = self.now + down_for;
        self.nodes[node.index()].down_until = Some(until);
        self.push(until, EventKind::Recover { node });
    }

    /// Recovers a crashed node immediately (clears the down mark and runs
    /// its [`Process::on_recover`] hook). A no-op when the node is up.
    pub fn recover_node(&mut self, node: NodeId) {
        if self.nodes[node.index()].down_until.take().is_some() {
            self.run_recover(node);
        }
    }

    /// Installs (or, with `None`, heals) a network [`Partition`]. While a
    /// partition is in force, messages between nodes in different groups
    /// are suppressed at send time (counted as blocked); messages already
    /// in flight still arrive, exactly as a real cut leaves packets on
    /// the wire. Externally injected traffic is not subject to the
    /// partition (it models fault residue, not link traffic).
    pub fn set_partition(&mut self, partition: Option<Partition>) {
        self.partition = partition;
    }

    /// The partition currently in force, if any.
    #[must_use]
    pub fn partition(&self) -> Option<&Partition> {
        self.partition.as_ref()
    }

    /// Fault injection: jumps `node`'s clock forward by `jump` at the
    /// current instant, optionally changing its drift rate. Pending
    /// real-time wheel entries are deliberately left untouched — hardware
    /// timers survive a clock-register glitch — so already-scheduled
    /// wake-ups fire at their original real times and merely read the new
    /// (jumped) local clock.
    pub fn skew_clock(&mut self, node: NodeId, jump: Duration, new_rate_ppm: Option<i32>) {
        let slot = &mut self.nodes[node.index()];
        slot.clock = slot.clock.jumped(self.now, jump, new_rate_ppm);
    }

    /// Fault injection: inflates every sampled link delay by `num/den`
    /// until the given real time (`num > den` models congestion that
    /// violates the paper's δ bound — properties are only promised again
    /// after the window closes). Scaling happens after the RNG draw, so
    /// the random sequence is unchanged.
    pub fn inflate_delays(&mut self, num: u64, den: u64, until: RealTime) {
        assert!(den > 0, "inflation denominator must be positive");
        self.delay_inflation = Some((num, den, until));
    }

    /// Fault injection: cancels every pending timer of `node` carrying
    /// `token` (state scrambling — a transient fault may eat pending
    /// wake-ups). Returns how many were removed.
    pub fn cancel_node_timer(&mut self, node: NodeId, token: u64) -> usize {
        self.cancel_timers(node, token)
    }

    /// Fault injection: plants a timer for `node` at `after` from now
    /// carrying `token` — the complement of
    /// [`Simulation::cancel_node_timer`]: a transient fault may also
    /// fabricate spurious wake-ups.
    pub fn plant_timer(&mut self, node: NodeId, after: Duration, token: u64) {
        let at = self.now + after;
        self.schedule_timer(node, at, token);
    }

    /// Mutable access to a node's process, for harness-level fault
    /// injection (downcast via [`Process::as_any_mut`]).
    pub fn process_mut(&mut self, node: NodeId) -> &mut dyn Process<M, O> {
        &mut *self.nodes[node.index()].process
    }

    /// Externally injects a message with a *forged* sender identity — only
    /// meaningful as transient-fault residue or adversary action.
    pub fn inject_message(&mut self, at: RealTime, from: NodeId, to: NodeId, msg: M) {
        let at = at.max(self.now);
        self.metrics.injected += 1;
        self.push(
            at,
            EventKind::Deliver {
                to,
                from,
                msg: Arc::new(msg),
            },
        );
    }

    /// Runs until real time `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: RealTime) {
        self.start_if_needed();
        while let Some(due) = self.queue.peek_due() {
            if due > t.as_nanos() {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = RealTime::from_nanos(ev.due);
            self.events_processed += 1;
            self.dispatch_coalescing(self.now, ev.payload);
        }
        self.now = self.now.max(t);
    }

    /// Runs for a real-time span.
    pub fn run_for(&mut self, span: Duration) {
        let target = self.now + span;
        self.run_until(target);
    }

    /// Processes a single event; returns `false` when the queue is empty.
    /// Always per-event: `step` never coalesces, so single-stepping is
    /// exactly the [`WaveMode::PerMessage`] order regardless of mode.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        match self.queue.pop() {
            Some(ev) => {
                self.now = RealTime::from_nanos(ev.due);
                self.events_processed += 1;
                self.dispatch(self.now, ev.payload);
                true
            }
            None => false,
        }
    }

    /// Number of pending (live) events in the scheduler.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Physical scheduler occupancy, including any not-yet-reclaimed
    /// cancelled entries. For the timer wheel this always equals
    /// [`Simulation::queue_len`] — rescheduling cancels in place rather
    /// than leaving stale entries to be filtered at pop — which the
    /// stale-`WakeAt` regression test pins down.
    #[must_use]
    pub fn queue_occupancy(&self) -> usize {
        self.queue.occupancy()
    }

    /// Runs every node's [`Process::on_start`] hook if that has not
    /// happened yet (the sharded simulator calls this before taking the
    /// wheel apart, so both modes share the exact start-up trace).
    pub(crate) fn ensure_started(&mut self) {
        self.start_if_needed();
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let node = NodeId::new(i as u32);
            let mut outbox = std::mem::take(&mut self.scratch_outbox);
            {
                let n = self.nodes.len();
                let local = self.nodes[i].clock.local_at(self.now);
                let slot = &mut self.nodes[i];
                let rng = self.rngs.stream(node);
                let mut words = move || rng.next_u64();
                let mut ctx = Ctx {
                    me: node,
                    n,
                    now_local: local,
                    outbox: &mut outbox,
                    rng_words: &mut words,
                };
                slot.process.on_start(&mut ctx);
            }
            self.apply_effects(node, &mut outbox);
            self.scratch_outbox = outbox;
        }
    }

    fn push(&mut self, at: RealTime, kind: EventKind<M>) {
        self.queue.insert(at.as_nanos(), kind);
    }

    /// Schedules `on_timer(token)` for `node` at real time `at`.
    ///
    /// Timers are identified by `(token, due)`: requesting one identical
    /// to a pending timer is a no-op, so re-emitted deadlines (the
    /// engine's `WakeAt` pattern) occupy a single wheel entry instead of
    /// accumulating stale duplicates.
    fn schedule_timer(&mut self, node: NodeId, at: RealTime, token: u64) {
        let key = (token, at.as_nanos());
        if self.nodes[node.index()].timers.contains_key(&key) {
            return;
        }
        let handle = self
            .queue
            .insert(at.as_nanos(), EventKind::Timer { node, token });
        self.nodes[node.index()].timers.insert(key, handle);
    }

    /// Cancels every pending timer of `node` carrying `token`; returns
    /// how many were removed from the wheel. Allocation-free: the
    /// registry holds 0–1 entries per token in the common reschedule
    /// pattern.
    fn cancel_timers(&mut self, node: NodeId, token: u64) -> usize {
        let mut cancelled = 0;
        loop {
            let slot = &mut self.nodes[node.index()].timers;
            let Some((&key, _)) = slot.range((token, 0)..=(token, u64::MAX)).next() else {
                break;
            };
            let handle = slot.remove(&key).expect("key just observed");
            if self.queue.cancel(handle) {
                cancelled += 1;
            }
        }
        cancelled
    }

    fn is_down(&self, node: NodeId, at: RealTime) -> bool {
        self.nodes[node.index()]
            .down_until
            .is_some_and(|until| at < until)
    }

    /// Delivers one payload to one (live) node: handler plus immediate
    /// effect application, exactly one pre-batch `Deliver` event's worth.
    fn deliver_to(&mut self, at: RealTime, to: NodeId, from: NodeId, msg: &M) {
        if self.is_down(to, at) {
            self.metrics.swallowed += 1;
            return;
        }
        let mut outbox = std::mem::take(&mut self.scratch_outbox);
        {
            let n = self.nodes.len();
            let local = self.nodes[to.index()].clock.local_at(at);
            let slot = &mut self.nodes[to.index()];
            let rng = self.rngs.stream(to);
            let mut words = move || rng.next_u64();
            let mut ctx = Ctx {
                me: to,
                n,
                now_local: local,
                outbox: &mut outbox,
                rng_words: &mut words,
            };
            slot.process.on_message(&mut ctx, from, msg);
        }
        self.metrics.delivered += 1;
        self.apply_effects(to, &mut outbox);
        self.scratch_outbox = outbox;
    }

    /// Delivers one coalesced same-instant wave to one (live) node: a
    /// single [`Process::on_message_batch`] invocation covering what
    /// would have been `batch.len()` separate
    /// [`Simulation::deliver_to`] calls. Metrics count per message, so
    /// both dispatch routes report identical totals.
    fn deliver_batch(&mut self, at: RealTime, to: NodeId, batch: &[(NodeId, Arc<M>)]) {
        if self.is_down(to, at) {
            self.metrics.swallowed += batch.len() as u64;
            return;
        }
        let mut outbox = std::mem::take(&mut self.scratch_outbox);
        {
            let n = self.nodes.len();
            let local = self.nodes[to.index()].clock.local_at(at);
            let slot = &mut self.nodes[to.index()];
            let rng = self.rngs.stream(to);
            let mut words = move || rng.next_u64();
            let mut ctx = Ctx {
                me: to,
                n,
                now_local: local,
                outbox: &mut outbox,
                rng_words: &mut words,
            };
            slot.process.on_message_batch(&mut ctx, batch);
        }
        self.metrics.delivered += batch.len() as u64;
        self.apply_effects(to, &mut outbox);
        self.scratch_outbox = outbox;
    }

    /// Dispatch entry for the run loop: coalesces the contiguous run of
    /// same-due delivery entries starting at `kind` into per-destination
    /// waves when the instant is draw-free, and falls back to plain
    /// [`Simulation::dispatch`] otherwise.
    ///
    /// Order preservation: the drain pops exactly the entries that would
    /// have popped next anyway (same due, ascending seq) and stops at the
    /// first non-delivery event, which is dispatched *after* the wave —
    /// its seq exceeds every drained entry, so that is its original
    /// position. Within the wave, each node receives its arrivals in the
    /// drained entry order, i.e. its own `(due, seq)` subsequence; only
    /// the interleaving *across* nodes becomes destination-major, which
    /// no per-node handler can observe directly.
    fn dispatch_coalescing(&mut self, at: RealTime, kind: EventKind<M>) {
        if self.wave_mode != WaveMode::Coalesced || !self.draw_free_at(at) {
            self.dispatch(at, kind);
            return;
        }
        match kind {
            EventKind::Deliver { .. } | EventKind::BroadcastDeliver { .. } => {}
            other => {
                self.dispatch(at, other);
                return;
            }
        }
        if self.queue.peek_due() != Some(at.as_nanos()) {
            // Nothing else due this instant — a lone entry has no wave to
            // join; the plain path avoids the group scan.
            self.dispatch(at, kind);
            return;
        }
        debug_assert!(self.wave_group.is_empty());
        self.wave_group.push(kind);
        let mut trailing = None;
        while self.queue.peek_due() == Some(at.as_nanos()) {
            let ev = self.queue.pop().expect("peeked");
            self.events_processed += 1;
            match ev.payload {
                k @ (EventKind::Deliver { .. } | EventKind::BroadcastDeliver { .. }) => {
                    self.wave_group.push(k);
                }
                other => {
                    trailing = Some(other);
                    break;
                }
            }
        }
        self.dispatch_wave(at);
        if let Some(ev) = trailing {
            self.dispatch(at, ev);
        }
    }

    /// Whether dispatch order at `at` cannot perturb the seeded RNG
    /// stream: with a deterministic link delay routing draws nothing, and
    /// outside a storm window no drop/corrupt/duplicate draws occur.
    /// Delivery handlers themselves draw no randomness (the
    /// [`Process::on_message_batch`] determinism contract; every shipped
    /// adversary strategy draws in `on_timer` only), so reordering them
    /// within an instant leaves every downstream draw identical.
    fn draw_free_at(&self, at: RealTime) -> bool {
        self.link.delay_min == self.link.delay_max && !self.storm.is_some_and(|s| s.active_at(at))
    }

    /// Destination-major dispatch of one drained wave group: nodes in
    /// ascending id order, each invoked once with its `(due, seq)`-ordered
    /// arrivals. Bitmaps are recycled exactly as the per-message
    /// `BroadcastDeliver` arm recycles them.
    fn dispatch_wave(&mut self, at: RealTime) {
        for i in 0..self.nodes.len() {
            let node = NodeId::new(i as u32);
            let mut batch = std::mem::take(&mut self.wave_batch);
            debug_assert!(batch.is_empty());
            for ev in &self.wave_group {
                match ev {
                    EventKind::Deliver { to, from, msg } if *to == node => {
                        batch.push((*from, Arc::clone(msg)));
                    }
                    EventKind::BroadcastDeliver { from, msg, dests } if dests.contains(node) => {
                        batch.push((*from, Arc::clone(msg)));
                    }
                    _ => {}
                }
            }
            if !batch.is_empty() {
                self.deliver_batch(at, node, &batch);
                batch.clear();
            }
            self.wave_batch = batch;
        }
        for ev in self.wave_group.drain(..) {
            if let EventKind::BroadcastDeliver { mut dests, .. } = ev {
                dests.clear();
                self.bitset_pool.push(dests);
            }
        }
    }

    /// Runs a node's [`Process::on_recover`] hook and applies its effects
    /// (same scratch-outbox pattern as delivery dispatch).
    fn run_recover(&mut self, node: NodeId) {
        let mut outbox = std::mem::take(&mut self.scratch_outbox);
        {
            let n = self.nodes.len();
            let local = self.nodes[node.index()].clock.local_at(self.now);
            let slot = &mut self.nodes[node.index()];
            let rng = self.rngs.stream(node);
            let mut words = move || rng.next_u64();
            let mut ctx = Ctx {
                me: node,
                n,
                now_local: local,
                outbox: &mut outbox,
                rng_words: &mut words,
            };
            slot.process.on_recover(&mut ctx);
        }
        self.apply_effects(node, &mut outbox);
        self.scratch_outbox = outbox;
    }

    fn dispatch(&mut self, at: RealTime, kind: EventKind<M>) {
        match kind {
            EventKind::Deliver { to, from, msg } => {
                self.deliver_to(at, to, from, &msg);
            }
            EventKind::BroadcastDeliver {
                from,
                msg,
                mut dests,
            } => {
                // Ascending-id delivery reproduces the per-destination pop
                // order (equal due ⇒ seq order ⇒ this broadcast's
                // insertion order). Each destination's effects apply
                // before the next destination's handler runs, exactly as
                // they did across n separate pops: any event a handler
                // schedules gets a later seq than this batch, so nothing
                // could have popped in between anyway.
                for to in dests.iter() {
                    self.deliver_to(at, to, from, &msg);
                }
                dests.clear();
                self.bitset_pool.push(dests);
            }
            EventKind::Timer { node, token } => {
                // The wheel entry just fired: forget its handle whether
                // or not the node is up to receive it.
                self.nodes[node.index()]
                    .timers
                    .remove(&(token, at.as_nanos()));
                if self.is_down(node, at) {
                    return;
                }
                let mut outbox = std::mem::take(&mut self.scratch_outbox);
                {
                    let n = self.nodes.len();
                    let local = self.nodes[node.index()].clock.local_at(at);
                    let slot = &mut self.nodes[node.index()];
                    let rng = self.rngs.stream(node);
                    let mut words = move || rng.next_u64();
                    let mut ctx = Ctx {
                        me: node,
                        n,
                        now_local: local,
                        outbox: &mut outbox,
                        rng_words: &mut words,
                    };
                    slot.process.on_timer(&mut ctx, token);
                }
                self.apply_effects(node, &mut outbox);
                self.scratch_outbox = outbox;
            }
            EventKind::Injection => {
                let Some(storm) = self.storm else { return };
                if !storm.active_at(at) {
                    return;
                }
                if let (Some(injector), Some(period)) =
                    (self.injector.as_mut(), storm.injection_period)
                {
                    let n = self.nodes.len();
                    // Injection draws come from the auxiliary stream (the
                    // global stream in `RngMode::Global`): they belong to
                    // the network fault model, not to any node.
                    let (from, to, msg) = injector(self.rngs.aux(), n);
                    self.metrics.injected += 1;
                    self.push(
                        at,
                        EventKind::Deliver {
                            to,
                            from,
                            msg: Arc::new(msg),
                        },
                    );
                    // Jittered re-arm (±50%).
                    let base = period.as_nanos().max(1);
                    let jitter = self.rngs.aux().gen_range(base / 2..=base + base / 2);
                    self.push(at + Duration::from_nanos(jitter), EventKind::Injection);
                }
            }
            EventKind::Recover { node } => {
                // Stale when the node was re-crashed meanwhile (a later
                // `down_until`) or already recovered by hand (`None`):
                // only the event matching the current down mark acts.
                let due_back = self.nodes[node.index()]
                    .down_until
                    .is_some_and(|until| until <= at);
                if due_back {
                    self.nodes[node.index()].down_until = None;
                    self.run_recover(node);
                }
            }
        }
    }

    fn apply_effects(&mut self, node: NodeId, effects: &mut Vec<Effect<M, O>>) {
        for e in effects.drain(..) {
            match e {
                Effect::Send { to, msg } => self.route(node, to, Arc::new(msg)),
                Effect::Broadcast { msg } => self.route_broadcast(node, msg),
                Effect::TimerAtLocal { at, token } => {
                    let clock = self.nodes[node.index()].clock;
                    let real = clock.real_of_local(at).max(self.now);
                    self.schedule_timer(node, real, token);
                }
                Effect::TimerAfter { after, token } => {
                    let clock = self.nodes[node.index()].clock;
                    let real = self.now + clock.scale_to_real(after);
                    self.schedule_timer(node, real, token);
                }
                Effect::CancelTimer { token } => {
                    self.cancel_timers(node, token);
                }
                Effect::Observe(obs) => {
                    let clock = self.nodes[node.index()].clock;
                    self.observations.push(Observation {
                        node,
                        real: self.now,
                        local: clock.local_at(self.now),
                        event: obs,
                    });
                }
                Effect::CrashNode { node, down_for } => {
                    self.crash_node(node, down_for);
                }
                Effect::RecoverNode { node } => {
                    self.recover_node(node);
                }
                Effect::SetPartition { partition } => {
                    self.set_partition(partition);
                }
            }
        }
    }

    /// Fans one payload out to every node. The message is wrapped in an
    /// [`Arc`] exactly once, and destinations sharing a due time are
    /// coalesced into a single [`EventKind::BroadcastDeliver`] wheel entry
    /// carrying a destination bitmap — under a deterministic link delay
    /// the entire fan-out is **one** queue entry instead of n.
    ///
    /// Determinism: the per-destination loop performs exactly the RNG
    /// draws the pre-batch path performed, in the same order, and every
    /// singleton push (a storm duplicate, or a corrupted copy peeled out
    /// of its batch) first flushes the open batches so the `(due, seq)`
    /// interleaving of all pushed entries matches the per-destination
    /// path entry for entry. Within a batch, expiry delivers in ascending
    /// destination id — the order equal-due per-destination entries
    /// popped in. `BroadcastMode::PerDestination` keeps the old route as
    /// the reference for the A/B parity tests.
    fn route_broadcast(&mut self, from: NodeId, msg: M) {
        if self.mode == BroadcastMode::PerDestination {
            self.route_broadcast_per_dest(from, msg);
            return;
        }
        let shared = Arc::new(msg);
        let mut batches = std::mem::take(&mut self.batch_scratch);
        debug_assert!(batches.is_empty());
        for i in 0..self.nodes.len() {
            let to = NodeId::new(i as u32);
            self.metrics.sent += 1;
            if let Some(tagger) = self.tagger {
                *self.metrics.per_tag.entry(tagger(&shared)).or_insert(0) += 1;
            }
            if self
                .blocks
                .iter()
                .any(|b| b.from == from && b.to == to && self.now < b.until)
            {
                self.metrics.blocked += 1;
                continue; // blocked: the bit is simply never set
            }
            // Partition suppression sits before any RNG draw, mirroring
            // `route`, so both broadcast modes keep identical draw
            // sequences under a partition.
            if self.partition.as_ref().is_some_and(|p| !p.allows(from, to)) {
                self.metrics.blocked += 1;
                continue;
            }
            let storm_active = self.storm.is_some_and(|s| s.active_at(self.now));
            if !storm_active {
                let due =
                    self.now + self.sample_delay(from, self.link.delay_min, self.link.delay_max);
                Self::batch_insert(&mut batches, &mut self.bitset_pool, due, to);
                continue;
            }
            let storm = self.storm.expect("checked");
            if storm.drop_den > 0
                && self
                    .rngs
                    .stream(from)
                    .gen_ratio(storm.drop_num, storm.drop_den)
            {
                self.metrics.dropped += 1;
                continue;
            }
            // A corrupted destination is peeled out of its batch before
            // its copy is mutated. Broadcast corruption always operates
            // on a deep clone: the batch holds the shared `Arc`, so the
            // per-destination path's `Arc::try_unwrap` could never win
            // here either — every other destination keeps the pristine
            // payload. (Unicast sends in `route` keep the real
            // try-unwrap, where the delivery can be the sole holder.)
            let mut private: Option<Arc<M>> = None;
            if storm.corrupt_den > 0
                && self
                    .rngs
                    .stream(from)
                    .gen_ratio(storm.corrupt_num, storm.corrupt_den)
            {
                if let Some(corruptor) = self.corruptor.as_mut() {
                    let owned = (*shared).clone();
                    match corruptor(owned, self.rngs.stream(from)) {
                        Some(m) => {
                            self.metrics.corrupted += 1;
                            private = Some(Arc::new(m));
                        }
                        None => {
                            self.metrics.dropped += 1;
                            continue;
                        }
                    }
                } else {
                    // No corruptor installed: corruption degenerates to loss.
                    self.metrics.dropped += 1;
                    continue;
                }
            }
            if storm.dup_den > 0
                && self
                    .rngs
                    .stream(from)
                    .gen_ratio(storm.dup_num, storm.dup_den)
            {
                self.metrics.duplicated += 1;
                let at = self.now + self.sample_delay(from, Duration::ZERO, storm.max_delay);
                let payload = private.clone().unwrap_or_else(|| Arc::clone(&shared));
                // Preserve the per-destination (due, seq) interleaving:
                // everything batched so far must sit before this push.
                self.flush_batches(from, &shared, &mut batches);
                self.push(
                    at,
                    EventKind::Deliver {
                        to,
                        from,
                        msg: payload,
                    },
                );
            }
            let due = self.now + self.sample_delay(from, Duration::ZERO, storm.max_delay);
            match private {
                Some(p) => {
                    self.flush_batches(from, &shared, &mut batches);
                    self.push(due, EventKind::Deliver { to, from, msg: p });
                }
                None => Self::batch_insert(&mut batches, &mut self.bitset_pool, due, to),
            }
        }
        self.flush_batches(from, &shared, &mut batches);
        self.batch_scratch = batches;
    }

    /// The retained pre-batch fan-out: one queue entry per destination.
    fn route_broadcast_per_dest(&mut self, from: NodeId, msg: M) {
        let shared = Arc::new(msg);
        for i in 0..self.nodes.len() {
            self.route(from, NodeId::new(i as u32), Arc::clone(&shared));
        }
    }

    /// Adds `to` to the most recent open batch when the due matches,
    /// opening a new run otherwise. Merging only into the *last* run
    /// keeps this O(1) per destination; non-adjacent due collisions stay
    /// separate entries, which flushes them in destination order —
    /// exactly the per-destination path's equal-due pop order, so parity
    /// is unaffected (the A/B battery covers jittered links). Under a
    /// deterministic delay every destination matches the single open
    /// run, collapsing the whole fan-out into one entry.
    fn batch_insert(
        batches: &mut Vec<(RealTime, NodeId, Option<NodeBitSet>)>,
        pool: &mut Vec<NodeBitSet>,
        due: RealTime,
        to: NodeId,
    ) {
        if let Some((d, first, dests)) = batches.last_mut() {
            if *d == due {
                // Second or later member: materialize the bitmap lazily.
                let dests = dests.get_or_insert_with(|| {
                    let mut s = pool.pop().unwrap_or_default();
                    s.insert(*first);
                    s
                });
                dests.insert(to);
                return;
            }
        }
        batches.push((due, to, None));
    }

    /// Pushes every open batch onto the wheel, in creation order. A
    /// single-destination run is a plain [`EventKind::Deliver`] — no
    /// bitmap was ever created for it.
    fn flush_batches(
        &mut self,
        from: NodeId,
        shared: &Arc<M>,
        batches: &mut Vec<(RealTime, NodeId, Option<NodeBitSet>)>,
    ) {
        for (due, first, dests) in batches.drain(..) {
            let kind = match dests {
                None => EventKind::Deliver {
                    to: first,
                    from,
                    msg: Arc::clone(shared),
                },
                Some(dests) => EventKind::BroadcastDeliver {
                    from,
                    msg: Arc::clone(shared),
                    dests,
                },
            };
            self.queue.insert(due.as_nanos(), kind);
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: Arc<M>) {
        if to.index() >= self.nodes.len() {
            self.metrics.blocked += 1;
            return; // destination outside the membership — drop
        }
        self.metrics.sent += 1;
        if let Some(tagger) = self.tagger {
            *self.metrics.per_tag.entry(tagger(&msg)).or_insert(0) += 1;
        }
        // Explicit link blocks.
        if self
            .blocks
            .iter()
            .any(|b| b.from == from && b.to == to && self.now < b.until)
        {
            self.metrics.blocked += 1;
            return;
        }
        // Partition suppression (before any RNG draw — see route_broadcast).
        if self.partition.as_ref().is_some_and(|p| !p.allows(from, to)) {
            self.metrics.blocked += 1;
            return;
        }
        let storm_active = self.storm.is_some_and(|s| s.active_at(self.now));
        let mut payload = msg;
        let delay = if storm_active {
            let storm = self.storm.expect("checked");
            if storm.drop_den > 0
                && self
                    .rngs
                    .stream(from)
                    .gen_ratio(storm.drop_num, storm.drop_den)
            {
                self.metrics.dropped += 1;
                return;
            }
            if storm.corrupt_den > 0
                && self
                    .rngs
                    .stream(from)
                    .gen_ratio(storm.corrupt_num, storm.corrupt_den)
            {
                if let Some(corruptor) = self.corruptor.as_mut() {
                    // Corruption is the one storm path that needs an owned
                    // message: unwrap the Arc when this delivery is its
                    // only holder, deep-clone otherwise (rare — only when
                    // corruption hits a broadcast copy).
                    let owned = Arc::try_unwrap(payload).unwrap_or_else(|shared| (*shared).clone());
                    match corruptor(owned, self.rngs.stream(from)) {
                        Some(m) => {
                            self.metrics.corrupted += 1;
                            payload = Arc::new(m);
                        }
                        None => {
                            self.metrics.dropped += 1;
                            return;
                        }
                    }
                } else {
                    // No corruptor installed: corruption degenerates to loss.
                    self.metrics.dropped += 1;
                    return;
                }
            }
            if storm.dup_den > 0
                && self
                    .rngs
                    .stream(from)
                    .gen_ratio(storm.dup_num, storm.dup_den)
            {
                self.metrics.duplicated += 1;
                let d = self.sample_delay(from, Duration::ZERO, storm.max_delay);
                let at = self.now + d;
                self.push(
                    at,
                    EventKind::Deliver {
                        to,
                        from,
                        msg: Arc::clone(&payload),
                    },
                );
            }
            self.sample_delay(from, Duration::ZERO, storm.max_delay)
        } else {
            self.sample_delay(from, self.link.delay_min, self.link.delay_max)
        };
        let at = self.now + delay;
        self.push(
            at,
            EventKind::Deliver {
                to,
                from,
                msg: payload,
            },
        );
    }

    /// Samples a link delay for a message sent by `from` — jitter draws
    /// are attributed to the sender's stream, which in `RngMode::Global`
    /// is the one global stream (byte-identical to the pre-stream code).
    fn sample_delay(&mut self, from: NodeId, min: Duration, max: Duration) -> Duration {
        let raw = if min == max {
            min
        } else {
            let lo = min.as_nanos();
            let hi = max.as_nanos();
            Duration::from_nanos(self.rngs.stream(from).gen_range(lo..=hi))
        };
        // Delay-inflation fault: scale after the draw so the random
        // sequence is unchanged by the fault being active.
        match self.delay_inflation {
            Some((num, den, until)) if self.now < until => raw.saturating_scale(num, den),
            _ => raw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pings on start; pongs back every message; counts deliveries.
    struct PingPong {
        limit: u32,
        count: u32,
    }

    impl Process<u32, String> for PingPong {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32, String>) {
            if ctx.me() == NodeId::new(0) {
                ctx.send(NodeId::new(1), 0);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32, String>, from: NodeId, msg: &u32) {
            self.count += 1;
            ctx.observe(format!("got {msg}"));
            if *msg < self.limit {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32, String>, _token: u64) {}
    }

    fn two_pingpong(seed: u64) -> Simulation<u32, String> {
        SimBuilder::new(seed)
            .link(LinkConfig::uniform(
                Duration::from_micros(100),
                Duration::from_millis(2),
            ))
            .node(
                Box::new(PingPong { limit: 9, count: 0 }),
                DriftClock::ideal(),
            )
            .node(
                Box::new(PingPong { limit: 9, count: 0 }),
                DriftClock::new(RealTime::ZERO, LocalTime::from_nanos(999), 50),
            )
            .build()
    }

    #[test]
    fn ping_pong_delivers_in_order_per_pair() {
        let mut sim = two_pingpong(1);
        sim.run_until(RealTime::from_nanos(1_000_000_000));
        // 0 → 1 → 2 → ... → 9: ten messages observed total.
        assert_eq!(sim.observations().len(), 10);
        assert_eq!(sim.metrics().delivered, 10);
        let last = sim.observations().last().unwrap();
        assert_eq!(last.event, "got 9");
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut sim = two_pingpong(seed);
            sim.run_until(RealTime::from_nanos(1_000_000_000));
            sim.observations()
                .iter()
                .map(|o| (o.node, o.real, o.event.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ in timing");
    }

    #[test]
    fn delays_respect_bounds() {
        let mut sim = two_pingpong(3);
        sim.run_until(RealTime::from_nanos(1_000_000_000));
        let obs = sim.observations();
        for w in obs.windows(2) {
            let gap = w[1].real.since(w[0].real);
            assert!(gap >= Duration::from_micros(100));
            assert!(gap <= Duration::from_millis(2));
        }
    }

    struct TimerBeep;
    impl Process<u32, u64> for TimerBeep {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32, u64>) {
            ctx.set_timer_after(Duration::from_millis(5), 42);
            ctx.set_timer_at(ctx.now() + Duration::from_millis(1), 43);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, u32, u64>, _from: NodeId, _msg: &u32) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32, u64>, token: u64) {
            ctx.observe(token);
        }
    }

    #[test]
    fn timers_fire_in_local_time() {
        let mut sim: Simulation<u32, u64> = SimBuilder::new(5)
            .node(
                Box::new(TimerBeep),
                DriftClock::new(RealTime::ZERO, LocalTime::ZERO, 1000),
            )
            .build();
        sim.run_until(RealTime::from_nanos(100_000_000));
        let tokens: Vec<u64> = sim.observations().iter().map(|o| o.event).collect();
        assert_eq!(tokens, vec![43, 42]);
        // The 5ms local-time timer fires slightly *earlier* in real time on
        // a fast (+1000 ppm) clock.
        let t42 = sim.observations()[1].real;
        assert!(t42 < RealTime::from_nanos(5_000_000));
        assert!(t42 > RealTime::from_nanos(4_900_000));
    }

    #[test]
    fn down_nodes_swallow_messages() {
        let mut sim = two_pingpong(9);
        sim.set_down_until(NodeId::new(1), RealTime::from_nanos(1_000_000_000));
        sim.run_until(RealTime::from_nanos(1_000_000_000));
        assert_eq!(sim.observations().len(), 0);
        assert_eq!(sim.metrics().swallowed, 1);
    }

    #[test]
    fn link_blocks_suppress() {
        let mut sim = two_pingpong(9);
        sim.block_link(
            NodeId::new(0),
            NodeId::new(1),
            RealTime::from_nanos(1_000_000_000),
        );
        sim.run_until(RealTime::from_nanos(1_000_000_000));
        assert_eq!(sim.metrics().blocked, 1);
        assert_eq!(sim.observations().len(), 0);
    }

    #[test]
    fn storm_drops_messages() {
        let storm = StormConfig {
            until: RealTime::from_nanos(10_000_000_000),
            drop_num: 1,
            drop_den: 1, // drop everything
            corrupt_num: 0,
            corrupt_den: 1,
            dup_num: 0,
            dup_den: 1,
            max_delay: Duration::from_millis(10),
            injection_period: None,
        };
        let mut sim: Simulation<u32, String> = SimBuilder::new(2)
            .storm(storm)
            .node(
                Box::new(PingPong { limit: 9, count: 0 }),
                DriftClock::ideal(),
            )
            .node(
                Box::new(PingPong { limit: 9, count: 0 }),
                DriftClock::ideal(),
            )
            .build();
        sim.run_until(RealTime::from_nanos(1_000_000_000));
        assert_eq!(sim.metrics().dropped, 1);
        assert_eq!(sim.observations().len(), 0);
    }

    #[test]
    fn storm_injection_generates_traffic() {
        let storm = StormConfig {
            until: RealTime::from_nanos(50_000_000),
            drop_num: 0,
            drop_den: 1,
            corrupt_num: 0,
            corrupt_den: 1,
            dup_num: 0,
            dup_den: 1,
            max_delay: Duration::from_millis(1),
            injection_period: Some(Duration::from_millis(1)),
        };
        let mut sim: Simulation<u32, String> = SimBuilder::new(2)
            .storm(storm)
            .injector(Box::new(|rng, n| {
                let from = NodeId::new((rng.next_u64() % n as u64) as u32);
                let to = NodeId::new((rng.next_u64() % n as u64) as u32);
                (from, to, 99)
            }))
            .node(
                Box::new(PingPong { limit: 0, count: 0 }),
                DriftClock::ideal(),
            )
            .node(
                Box::new(PingPong { limit: 0, count: 0 }),
                DriftClock::ideal(),
            )
            .build();
        sim.run_until(RealTime::from_nanos(200_000_000));
        assert!(sim.metrics().injected >= 30, "storm must inject steadily");
        // Injection stops when the storm ends.
        let injected_after_storm = sim
            .observations()
            .iter()
            .filter(|o| o.real > RealTime::from_nanos(51_000_000))
            .count();
        assert_eq!(injected_after_storm, 0);
    }

    #[test]
    fn external_injection_delivers() {
        let mut sim = two_pingpong(4);
        sim.inject_message(
            RealTime::from_nanos(500),
            NodeId::new(0), // forged identity
            NodeId::new(1),
            8,
        );
        sim.run_until(RealTime::from_nanos(1_000_000_000));
        assert!(sim
            .observations()
            .iter()
            .any(|o| o.node == NodeId::new(1) && o.event == "got 8"));
    }

    #[test]
    fn run_for_advances_clock() {
        let mut sim = two_pingpong(4);
        sim.run_for(Duration::from_millis(3));
        assert_eq!(sim.now(), RealTime::from_nanos(3_000_000));
    }

    #[test]
    fn step_returns_false_when_drained() {
        let mut sim: Simulation<u32, String> = SimBuilder::new(0)
            .node(
                Box::new(PingPong { limit: 0, count: 0 }),
                DriftClock::ideal(),
            )
            .node(
                Box::new(PingPong { limit: 0, count: 0 }),
                DriftClock::ideal(),
            )
            .build();
        while sim.step() {}
        assert!(!sim.step());
        assert_eq!(sim.observations().len(), 1);
    }

    /// Periodic self-re-arming ticker with a recovery hook (the pattern
    /// the engine adapter uses): crashing it kills the tick chain, and
    /// `on_recover` must rebuild it.
    struct Ticker;
    impl Process<u32, String> for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32, String>) {
            ctx.set_timer_after(Duration::from_millis(1), 7);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, u32, String>, _from: NodeId, _msg: &u32) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32, String>, token: u64) {
            if token == 7 {
                ctx.observe("tick".to_string());
                ctx.set_timer_after(Duration::from_millis(1), 7);
            }
        }
        fn on_recover(&mut self, ctx: &mut Ctx<'_, u32, String>) {
            ctx.observe("recovered".to_string());
            ctx.cancel_timer(7);
            ctx.set_timer_after(Duration::from_millis(1), 7);
        }
    }

    fn one_ticker() -> Simulation<u32, String> {
        SimBuilder::new(11)
            .node(Box::new(Ticker), DriftClock::ideal())
            .build()
    }

    #[test]
    fn crash_kills_ticks_and_recover_rearms() {
        let mut sim = one_ticker();
        sim.run_until(RealTime::from_nanos(5_000_000));
        let before = sim.observations().len();
        assert!(before >= 4);
        sim.crash_node(NodeId::new(0), Duration::from_millis(10));
        sim.run_until(RealTime::from_nanos(30_000_000));
        let recoveries: Vec<_> = sim
            .observations()
            .iter()
            .filter(|o| o.event == "recovered")
            .collect();
        assert_eq!(recoveries.len(), 1);
        assert_eq!(recoveries[0].real, RealTime::from_nanos(15_000_000));
        // No tick lands inside the outage (strictly after the crash
        // instant — the tick *at* 5ms fired before the crash call), and
        // the chain resumes after.
        let crash_at = RealTime::from_nanos(5_000_000);
        let back_at = RealTime::from_nanos(15_000_000);
        assert!(!sim
            .observations()
            .iter()
            .any(|o| o.event == "tick" && o.real > crash_at && o.real < back_at));
        let after = sim
            .observations()
            .iter()
            .filter(|o| o.event == "tick" && o.real > back_at)
            .count();
        assert!(after >= 10, "tick chain must resume after recovery");
    }

    #[test]
    fn recover_event_stale_after_recrash_or_manual_recovery() {
        // Re-crash extends the outage: the first Recover event is stale.
        let mut sim = one_ticker();
        sim.crash_node(NodeId::new(0), Duration::from_millis(5));
        sim.crash_node(NodeId::new(0), Duration::from_millis(20));
        sim.run_until(RealTime::from_nanos(30_000_000));
        let recs: Vec<_> = sim
            .observations()
            .iter()
            .filter(|o| o.event == "recovered")
            .map(|o| o.real)
            .collect();
        assert_eq!(recs, vec![RealTime::from_nanos(20_000_000)]);

        // Manual recovery first: the scheduled Recover event is then stale.
        let mut sim = one_ticker();
        sim.crash_node(NodeId::new(0), Duration::from_millis(5));
        sim.recover_node(NodeId::new(0));
        sim.recover_node(NodeId::new(0)); // idempotent while up
        sim.run_until(RealTime::from_nanos(30_000_000));
        let recs = sim
            .observations()
            .iter()
            .filter(|o| o.event == "recovered")
            .count();
        assert_eq!(recs, 1);
    }

    #[test]
    fn partition_suppresses_then_heals() {
        let mut sim = two_pingpong(6);
        sim.set_partition(Some(Partition::split(2, &[NodeId::new(1)])));
        sim.run_until(RealTime::from_nanos(100_000_000));
        assert_eq!(sim.metrics().blocked, 1);
        assert!(sim.observations().is_empty());
        assert!(sim.partition().is_some());
        // Heal and restart the exchange: traffic flows again.
        sim.set_partition(None);
        sim.inject_message(sim.now(), NodeId::new(0), NodeId::new(1), 0);
        sim.run_until(RealTime::from_nanos(1_000_000_000));
        assert!(sim.observations().len() >= 10);
    }

    #[test]
    fn delay_inflation_scales_post_draw() {
        let mut sim: Simulation<u32, String> = SimBuilder::new(0)
            .link(LinkConfig::fixed(Duration::from_millis(1)))
            .node(
                Box::new(PingPong { limit: 0, count: 0 }),
                DriftClock::ideal(),
            )
            .node(
                Box::new(PingPong { limit: 0, count: 0 }),
                DriftClock::ideal(),
            )
            .build();
        sim.inflate_delays(3, 1, RealTime::from_nanos(500_000_000));
        sim.run_until(RealTime::from_nanos(1_000_000_000));
        // The 1ms fixed delay became 3ms under 3/1 inflation.
        assert_eq!(sim.observations()[0].real, RealTime::from_nanos(3_000_000));
    }

    #[test]
    fn skew_clock_jumps_local_reading() {
        let mut sim = one_ticker();
        sim.run_until(RealTime::from_nanos(2_500_000));
        let before = sim.clock(NodeId::new(0)).local_at(sim.now());
        sim.skew_clock(NodeId::new(0), Duration::from_millis(50), None);
        let after = sim.clock(NodeId::new(0)).local_at(sim.now());
        assert_eq!(after, before + Duration::from_millis(50));
    }

    #[test]
    fn timer_plant_and_cancel_hooks() {
        let mut sim = one_ticker();
        sim.run_until(RealTime::from_nanos(2_500_000));
        // One pending tick timer: cancelling it severs the chain.
        assert_eq!(sim.cancel_node_timer(NodeId::new(0), 7), 1);
        sim.run_until(RealTime::from_nanos(10_000_000));
        assert_eq!(sim.observations().len(), 2);
        // Planting a fresh wake-up restarts it.
        sim.plant_timer(NodeId::new(0), Duration::from_millis(1), 7);
        sim.run_until(RealTime::from_nanos(20_000_000));
        assert!(sim.observations().len() > 10);
    }

    #[test]
    fn out_of_range_destination_dropped() {
        // A single-node system where the process sends to a nonexistent
        // peer: the message is dropped, not a panic.
        let mut sim: Simulation<u32, String> = SimBuilder::new(0)
            .node(
                Box::new(PingPong { limit: 0, count: 0 }),
                DriftClock::ideal(),
            )
            .build();
        sim.run_until(RealTime::from_nanos(1_000_000));
        assert_eq!(sim.metrics().blocked, 1);
    }
}
