//! The process abstraction: what a simulated node can see and do.

use std::any::Any;
use std::sync::Arc;

use ssbyz_types::{Duration, LocalTime, NodeId};

use crate::network::Partition;

/// Everything a process may do during one event handler invocation.
///
/// A process only ever sees **local time**; the simulator translates to and
/// from real time through the node's drifting clock, exactly as the paper's
/// model prescribes.
pub struct Ctx<'a, M, O> {
    pub(crate) me: NodeId,
    pub(crate) n: usize,
    pub(crate) now_local: LocalTime,
    pub(crate) outbox: &'a mut Vec<Effect<M, O>>,
    pub(crate) rng_words: &'a mut dyn FnMut() -> u64,
}

/// Side effects queued by a process, executed by the simulator after the
/// handler returns.
#[derive(Debug)]
pub(crate) enum Effect<M, O> {
    Send {
        to: NodeId,
        msg: M,
    },
    Broadcast {
        msg: M,
    },
    TimerAtLocal {
        at: LocalTime,
        token: u64,
    },
    TimerAfter {
        after: Duration,
        token: u64,
    },
    CancelTimer {
        token: u64,
    },
    Observe(O),
    /// Fault injection: crash a node for a real-time span (controller
    /// power — ordinary protocol processes have no business issuing it).
    CrashNode {
        node: NodeId,
        down_for: Duration,
    },
    /// Fault injection: bring a crashed node back up immediately.
    RecoverNode {
        node: NodeId,
    },
    /// Fault injection: install (`Some`) or heal (`None`) a partition.
    SetPartition {
        partition: Option<Partition>,
    },
}

impl<'a, M, O> Ctx<'a, M, O> {
    /// This node's identity.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the system.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The node's current local-clock reading.
    #[must_use]
    pub fn now(&self) -> LocalTime {
        self.now_local
    }

    /// Sends `msg` to a single node (authenticated as coming from `me`).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push(Effect::Send { to, msg });
    }

    /// Sends `msg` to **all** nodes, including `me` (the paper's
    /// "send to all").
    pub fn broadcast(&mut self, msg: M) {
        self.outbox.push(Effect::Broadcast { msg });
    }

    /// Schedules `on_timer(token)` at local time `at` (fires immediately
    /// if `at` is already past).
    ///
    /// Timers are identified by `(token, due time)`: scheduling one
    /// identical to a timer already pending is a no-op, so re-emitting
    /// the same deadline never accumulates duplicate queue entries.
    pub fn set_timer_at(&mut self, at: LocalTime, token: u64) {
        self.outbox.push(Effect::TimerAtLocal { at, token });
    }

    /// Schedules `on_timer(token)` after a local-clock span (same
    /// `(token, due time)` identity as [`Ctx::set_timer_at`]).
    pub fn set_timer_after(&mut self, after: Duration, token: u64) {
        self.outbox.push(Effect::TimerAfter { after, token });
    }

    /// Cancels **all** pending timers of this node carrying `token`.
    ///
    /// The scheduler removes the entries in place (O(1) per timer on the
    /// wheel) — rescheduling via cancel + set keeps queue occupancy
    /// bounded by live timers instead of leaving stale entries to be
    /// filtered at pop.
    pub fn cancel_timer(&mut self, token: u64) {
        self.outbox.push(Effect::CancelTimer { token });
    }

    /// Emits an observation record for harnesses and property checkers.
    pub fn observe(&mut self, obs: O) {
        self.outbox.push(Effect::Observe(obs));
    }

    /// Fault controller power: marks `node` crashed for a real-time span.
    /// The simulator swallows its deliveries, drops its timers at fire
    /// time, and invokes [`Process::on_recover`] when the span elapses.
    /// Meant for fault-injection driver processes, not protocol nodes.
    pub fn crash_node(&mut self, node: NodeId, down_for: Duration) {
        self.outbox.push(Effect::CrashNode { node, down_for });
    }

    /// Fault controller power: recovers a crashed node immediately
    /// (fires its [`Process::on_recover`] hook).
    pub fn recover_node(&mut self, node: NodeId) {
        self.outbox.push(Effect::RecoverNode { node });
    }

    /// Fault controller power: installs a network [`Partition`]. Replaces
    /// any partition currently in force.
    pub fn set_partition(&mut self, partition: Partition) {
        self.outbox.push(Effect::SetPartition {
            partition: Some(partition),
        });
    }

    /// Fault controller power: heals the current partition, if any.
    pub fn heal_partition(&mut self) {
        self.outbox.push(Effect::SetPartition { partition: None });
    }

    /// Deterministic per-simulation entropy (used by Byzantine strategies).
    pub fn rand_u64(&mut self) -> u64 {
        (self.rng_words)()
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.rand_u64() % bound
    }
}

/// A simulated node.
///
/// Handlers are invoked with a [`Ctx`] scoped to the node's own clock.
/// Implementations must be deterministic given the same inputs and
/// `rand_u64` draws — the whole simulation is then reproducible from its
/// seed.
pub trait Process<M, O>: Send {
    /// Called once when the simulation starts (schedule initial timers
    /// here).
    fn on_start(&mut self, ctx: &mut Ctx<'_, M, O>);

    /// Called when an authenticated message from `from` is delivered.
    ///
    /// The payload arrives by reference: broadcast fan-out shares one
    /// `Arc`-held message among all destinations, so a process that needs
    /// ownership clones explicitly — and one that drops or filters the
    /// message (the common case under load) never pays for a deep copy.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M, O>, from: NodeId, msg: &M);

    /// Called with a coalesced **wave**: every same-instant delivery
    /// destined for this node, in arrival order, as one handler
    /// invocation. The simulator routes through this entry point when
    /// receiver-side coalescing is active (`WaveMode::Coalesced` on a
    /// draw-free instant); each `Arc` clone in the batch is a reference
    /// bump on the broadcast-shared payload, never a deep copy.
    ///
    /// The default implementation loops [`Process::on_message`] per
    /// arrival, so existing processes keep their exact behavior;
    /// override it only to exploit the batch (the engine adapter feeds
    /// the whole wave into one triplet-table pass).
    ///
    /// Determinism contract: a handler reachable from this path must not
    /// draw `rand_u64`/`rand_below` or issue fault-controller powers —
    /// the simulator's coalescing gate assumes delivery handlers leave
    /// the seeded RNG stream untouched (timers are where the adversary
    /// strategies draw).
    fn on_message_batch(&mut self, ctx: &mut Ctx<'_, M, O>, batch: &[(NodeId, Arc<M>)]) {
        for (from, msg) in batch {
            self.on_message(ctx, *from, msg);
        }
    }

    /// Called when a previously scheduled timer fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M, O>, token: u64);

    /// Called when the node comes back up after a crash (scheduled
    /// recovery or explicit `recover_node`). Any timer that fired while
    /// the node was down was silently dropped — periodic self-re-arming
    /// timers are dead by now, so implementations should re-arm them
    /// here. The default does nothing (a stateless process needs no
    /// resurrection).
    fn on_recover(&mut self, _ctx: &mut Ctx<'_, M, O>) {}

    /// Downcast hook for harness-level fault injection (e.g. scrambling a
    /// wrapped engine mid-run). Implementations that want to be reachable
    /// return `Some(self)`; the default opts out.
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        None
    }
}
