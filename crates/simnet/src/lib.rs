//! # `ssbyz-simnet` — deterministic distributed-system simulator
//!
//! The substrate on which the `ssbyz` protocol stack is evaluated. It
//! models exactly the system of the paper (§2):
//!
//! * `n` nodes, each with a **drifting local clock** ([`DriftClock`],
//!   bounded rate deviation ρ, arbitrary boot reading that may wrap);
//! * an **authenticated, bounded-delay network** ([`LinkConfig`]):
//!   delivery within `[δ_min, δ]`, sender identity unforgeable by nodes;
//! * **transient-failure storms** ([`StormConfig`]): for a configured
//!   period the network drops, corrupts, duplicates, delays arbitrarily
//!   and fabricates messages with forged identities — afterwards it is
//!   non-faulty again, which is the moment self-stabilization is measured
//!   from.
//!
//! The simulation is a seeded discrete-event loop: identical seeds yield
//! identical executions, so every timing property of the paper can be
//! checked bit-for-bit reproducibly. Processes ([`Process`]) only ever
//! observe *local* time; real time exists solely for the harness (the
//! paper's `rt(τ)` mapping is [`DriftClock::real_of_local`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod network;
mod par;
mod process;
mod sim;

/// The shared hierarchical timer-wheel scheduler (re-exported from
/// `ssbyz-sched`): the event queue under this simulator and the
/// `ssbyz-runtime` router, plus the retained `BinaryHeap` golden model
/// the equivalence property tests compare against.
pub use ssbyz_sched as sched;

pub use clock::{DriftClock, PPM};
pub use network::{LinkBlock, LinkConfig, Partition, StormConfig};
pub use par::{AnySim, ShardedSim, SimMode};
pub use process::{Ctx, Process};
pub use sim::{
    stream_seed, BroadcastMode, Corruptor, Injector, Metrics, Observation, RngMode, SimBuilder,
    Simulation, WaveMode,
};
