//! Network model: bounded-delay authenticated links + transient storms.

use ssbyz_types::{Duration, NodeBitSet, NodeId, RealTime};

/// Steady-state link behaviour: every message between non-faulty nodes is
/// delivered within `[delay_min, delay_max]`, sampled uniformly. The
/// paper's bound `δ` corresponds to `delay_max` (processing time `π` is
/// folded into the same interval for simulation purposes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Minimum delivery latency.
    pub delay_min: Duration,
    /// Maximum delivery latency (the paper's δ, with π folded in).
    pub delay_max: Duration,
}

impl LinkConfig {
    /// Uniform delay in `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    #[must_use]
    pub fn uniform(min: Duration, max: Duration) -> Self {
        assert!(min <= max, "delay_min must not exceed delay_max");
        LinkConfig {
            delay_min: min,
            delay_max: max,
        }
    }

    /// A fixed-latency link.
    #[must_use]
    pub fn fixed(delay: Duration) -> Self {
        LinkConfig {
            delay_min: delay,
            delay_max: delay,
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::uniform(Duration::from_micros(500), Duration::from_millis(9))
    }
}

/// A transient-failure storm: until `until`, the network is *not* bound by
/// any assumption — messages may be dropped, delayed arbitrarily,
/// duplicated or corrupted, and spurious messages may appear from thin
/// air. This models the paper's incoherent period; self-stabilization is
/// measured from the moment the storm ends.
#[derive(Debug, Clone, Copy)]
pub struct StormConfig {
    /// Real time at which the network becomes non-faulty again.
    pub until: RealTime,
    /// Probability (num/den) that a message is dropped outright.
    pub drop_num: u32,
    /// Denominator for `drop_num`.
    pub drop_den: u32,
    /// Probability (num/den) that a message is corrupted via the
    /// simulation's corruptor hook.
    pub corrupt_num: u32,
    /// Denominator for `corrupt_num`.
    pub corrupt_den: u32,
    /// Probability (num/den) that a message is duplicated.
    pub dup_num: u32,
    /// Denominator for `dup_num`.
    pub dup_den: u32,
    /// Maximum (arbitrary) delivery delay during the storm.
    pub max_delay: Duration,
    /// If set, spurious messages are injected with this mean period.
    pub injection_period: Option<Duration>,
}

impl StormConfig {
    /// A heavy storm lasting until `until`: 50% drops, 25% corruption,
    /// 12.5% duplication, delays up to `max_delay`, spurious injection.
    #[must_use]
    pub fn heavy(until: RealTime, max_delay: Duration, injection_period: Duration) -> Self {
        StormConfig {
            until,
            drop_num: 1,
            drop_den: 2,
            corrupt_num: 1,
            corrupt_den: 4,
            dup_num: 1,
            dup_den: 8,
            max_delay,
            injection_period: Some(injection_period),
        }
    }

    /// Whether the storm is active at real time `t`.
    #[must_use]
    pub fn active_at(&self, t: RealTime) -> bool {
        t < self.until
    }
}

/// A network partition: nodes are split into disjoint groups and a
/// message crosses the network only when sender and receiver share a
/// group. A node that appears in **no** group is fully isolated (it still
/// delivers to itself — a node always hears its own broadcasts).
///
/// Partitions are installed on the simulation as a whole
/// (`Simulation::set_partition`) or scheduled from a fault controller via
/// `Effect::SetPartition`, and lifted by installing `None`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Partition {
    groups: Vec<NodeBitSet>,
}

impl Partition {
    /// An empty partition (isolates every node until groups are added).
    #[must_use]
    pub fn new() -> Self {
        Partition { groups: Vec::new() }
    }

    /// Adds a group of mutually reachable nodes.
    #[must_use]
    pub fn group(mut self, members: impl IntoIterator<Item = NodeId>) -> Self {
        let mut set = NodeBitSet::new();
        for m in members {
            set.insert(m);
        }
        self.groups.push(set);
        self
    }

    /// A two-way split of `0..n`: `minority` on one side, everyone else on
    /// the other.
    #[must_use]
    pub fn split(n: usize, minority: &[NodeId]) -> Self {
        let mut small = NodeBitSet::new();
        for m in minority {
            small.insert(*m);
        }
        let mut big = NodeBitSet::new();
        for i in 0..n {
            let id = NodeId::new(i as u32);
            if !small.contains(id) {
                big.insert(id);
            }
        }
        Partition {
            groups: vec![big, small],
        }
    }

    /// Whether a message from `from` may reach `to` under this partition.
    #[must_use]
    pub fn allows(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true; // self-delivery never crosses the network
        }
        self.groups
            .iter()
            .any(|g| g.contains(from) && g.contains(to))
    }

    /// The groups, for introspection.
    #[must_use]
    pub fn groups(&self) -> &[NodeBitSet] {
        &self.groups
    }
}

/// A temporarily blocked (partitioned) directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkBlock {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Block expires at this real time.
    pub until: RealTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_validates() {
        let l = LinkConfig::uniform(Duration::from_nanos(1), Duration::from_nanos(2));
        assert_eq!(l.delay_min, Duration::from_nanos(1));
    }

    #[test]
    #[should_panic(expected = "delay_min")]
    fn inverted_range_panics() {
        let _ = LinkConfig::uniform(Duration::from_nanos(3), Duration::from_nanos(2));
    }

    #[test]
    fn fixed_link() {
        let l = LinkConfig::fixed(Duration::from_millis(1));
        assert_eq!(l.delay_min, l.delay_max);
    }

    #[test]
    fn partition_groups_and_isolation() {
        let p = Partition::split(5, &[NodeId::new(3), NodeId::new(4)]);
        assert!(p.allows(NodeId::new(0), NodeId::new(1)));
        assert!(p.allows(NodeId::new(3), NodeId::new(4)));
        assert!(!p.allows(NodeId::new(0), NodeId::new(3)));
        assert!(!p.allows(NodeId::new(4), NodeId::new(2)));
        // Self-delivery always allowed, even for an unlisted node.
        let lonely = Partition::new().group([NodeId::new(0), NodeId::new(1)]);
        assert!(lonely.allows(NodeId::new(7), NodeId::new(7)));
        assert!(!lonely.allows(NodeId::new(7), NodeId::new(0)));
        assert_eq!(lonely.groups().len(), 1);
    }

    #[test]
    fn storm_activity_window() {
        let s = StormConfig::heavy(
            RealTime::from_nanos(100),
            Duration::from_millis(50),
            Duration::from_micros(10),
        );
        assert!(s.active_at(RealTime::from_nanos(99)));
        assert!(!s.active_at(RealTime::from_nanos(100)));
    }
}
