//! Network model: bounded-delay authenticated links + transient storms.

use ssbyz_types::{Duration, NodeId, RealTime};

/// Steady-state link behaviour: every message between non-faulty nodes is
/// delivered within `[delay_min, delay_max]`, sampled uniformly. The
/// paper's bound `δ` corresponds to `delay_max` (processing time `π` is
/// folded into the same interval for simulation purposes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Minimum delivery latency.
    pub delay_min: Duration,
    /// Maximum delivery latency (the paper's δ, with π folded in).
    pub delay_max: Duration,
}

impl LinkConfig {
    /// Uniform delay in `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    #[must_use]
    pub fn uniform(min: Duration, max: Duration) -> Self {
        assert!(min <= max, "delay_min must not exceed delay_max");
        LinkConfig {
            delay_min: min,
            delay_max: max,
        }
    }

    /// A fixed-latency link.
    #[must_use]
    pub fn fixed(delay: Duration) -> Self {
        LinkConfig {
            delay_min: delay,
            delay_max: delay,
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::uniform(Duration::from_micros(500), Duration::from_millis(9))
    }
}

/// A transient-failure storm: until `until`, the network is *not* bound by
/// any assumption — messages may be dropped, delayed arbitrarily,
/// duplicated or corrupted, and spurious messages may appear from thin
/// air. This models the paper's incoherent period; self-stabilization is
/// measured from the moment the storm ends.
#[derive(Debug, Clone, Copy)]
pub struct StormConfig {
    /// Real time at which the network becomes non-faulty again.
    pub until: RealTime,
    /// Probability (num/den) that a message is dropped outright.
    pub drop_num: u32,
    /// Denominator for `drop_num`.
    pub drop_den: u32,
    /// Probability (num/den) that a message is corrupted via the
    /// simulation's corruptor hook.
    pub corrupt_num: u32,
    /// Denominator for `corrupt_num`.
    pub corrupt_den: u32,
    /// Probability (num/den) that a message is duplicated.
    pub dup_num: u32,
    /// Denominator for `dup_num`.
    pub dup_den: u32,
    /// Maximum (arbitrary) delivery delay during the storm.
    pub max_delay: Duration,
    /// If set, spurious messages are injected with this mean period.
    pub injection_period: Option<Duration>,
}

impl StormConfig {
    /// A heavy storm lasting until `until`: 50% drops, 25% corruption,
    /// 12.5% duplication, delays up to `max_delay`, spurious injection.
    #[must_use]
    pub fn heavy(until: RealTime, max_delay: Duration, injection_period: Duration) -> Self {
        StormConfig {
            until,
            drop_num: 1,
            drop_den: 2,
            corrupt_num: 1,
            corrupt_den: 4,
            dup_num: 1,
            dup_den: 8,
            max_delay,
            injection_period: Some(injection_period),
        }
    }

    /// Whether the storm is active at real time `t`.
    #[must_use]
    pub fn active_at(&self, t: RealTime) -> bool {
        t < self.until
    }
}

/// A temporarily blocked (partitioned) directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkBlock {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Block expires at this real time.
    pub until: RealTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_validates() {
        let l = LinkConfig::uniform(Duration::from_nanos(1), Duration::from_nanos(2));
        assert_eq!(l.delay_min, Duration::from_nanos(1));
    }

    #[test]
    #[should_panic(expected = "delay_min")]
    fn inverted_range_panics() {
        let _ = LinkConfig::uniform(Duration::from_nanos(3), Duration::from_nanos(2));
    }

    #[test]
    fn fixed_link() {
        let l = LinkConfig::fixed(Duration::from_millis(1));
        assert_eq!(l.delay_min, l.delay_max);
    }

    #[test]
    fn storm_activity_window() {
        let s = StormConfig::heavy(
            RealTime::from_nanos(100),
            Duration::from_millis(50),
            Duration::from_micros(10),
        );
        assert!(s.active_at(RealTime::from_nanos(99)));
        assert!(!s.active_at(RealTime::from_nanos(100)));
    }
}
