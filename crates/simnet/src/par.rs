//! Sharded conservative-lookahead parallel simulation.
//!
//! [`ShardedSim`] partitions the nodes of a [`Simulation`] across worker
//! threads, each shard running its own timer wheel, and advances the
//! whole system in *lookahead windows*: the conservative link-delay lower
//! bound (`LinkProfile`-style `delay_min`, the paper's `d`) guarantees
//! that no message sent inside a window `[g, g + d)` can be due before
//! the window ends, so shards process their local events for one window
//! with no synchronization at all and exchange cross-shard deliveries at
//! a barrier afterwards — the classic null-message insight, with the
//! null messages replaced by a global window barrier.
//!
//! # Determinism
//!
//! The sharded simulator is deterministic *and thread-count invariant*:
//! a fixed seed produces bit-identical observation logs and metrics for
//! every `threads` value, because nothing in the execution ever depends
//! on cross-shard interleaving:
//!
//! * **Windows are global.** A window starts at the global minimum due
//!   time over every shard (and pending injection), which is a property
//!   of the event population, not of the sharding.
//! * **Deliveries are never inserted live.** Every send routes into the
//!   sending shard's *outbox* as an [`OutRecord`] stamped with
//!   `(due, sender, per-sender seq)`. The barrier sorts all records by
//!   that key — a total order derived from stable ids and each sender's
//!   own event order — and inserts them into the destination wheels in
//!   that canonical order, so each node's arrival sequence is identical
//!   for every thread count.
//! * **RNG streams are per-node** ([`RngMode::PerNode`], forced on by
//!   [`SimBuilder::build_sharded`]): routing draws come from the
//!   sender's stream, handler draws from the handling node's stream —
//!   never from a shared stream whose order would depend on scheduling.
//! * **Global effects are deferred.** A process-emitted crash/recover/
//!   partition change ([`Ctx::crash_node`] and friends) targets nodes in
//!   other shards, so it is recorded as an [`FxRec`] and applied at the
//!   barrier in `(due, emitter, seq)` order — for *every* thread count,
//!   including one, keeping the knob out of the trace.
//! * **Storms run sequentially.** A transient-failure storm breaks the
//!   delay lower bound (arbitrary delays, injected traffic), so the
//!   simulation runs on the plain sequential [`Simulation`] until the
//!   storm ends, then *decomposes* that simulation — nodes, RNG streams,
//!   in-flight wheel entries — into shards and switches to windowed
//!   execution forever. Stabilization measurement starts exactly at the
//!   storm end, which is where the parallel scale matters.
//!
//! Versus the sequential golden model the equivalence standard is
//! two-tier, mirroring the wave-coalescing precedent: per-node arrival
//! *order* and the full observation log are preserved as multisets per
//! `(node, real time)` with identical metrics (the barrier orders
//! equal-due arrivals from different senders by sender id rather than by
//! global send seq, and same-instant waves may split differently across
//! shard boundaries — both invisible to processes honouring the
//! [`Process::on_message_batch`] determinism contract), while
//! `Sharded(k)` vs `Sharded(1)` is bit-identical, full stop. The A/B
//! battery in `tests/shard_equivalence.rs` pins both tiers.
//!
//! [`Ctx::crash_node`]: crate::process::Ctx::crash_node

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration as StdDuration;

use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use ssbyz_sched::{EventQueue, TimerWheel};
use ssbyz_types::{Duration, NodeBitSet, NodeId, RealTime};

use crate::clock::DriftClock;
use crate::network::{LinkBlock, LinkConfig, Partition};
use crate::process::{Ctx, Effect, Process};
use crate::sim::{
    EventKind, Metrics, NodeSlot, Observation, RngMode, RngStreams, SimBuilder, Simulation,
    WaveMode,
};

/// Which execution engine a simulation runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// The single-threaded event loop ([`Simulation`]) — the golden
    /// model every sharded run is checked against.
    Sequential,
    /// The sharded conservative-lookahead engine ([`ShardedSim`]) with
    /// the given number of worker threads (clamped to at least 1; one
    /// shard per thread).
    Sharded(usize),
}

/// Network state shared read-only by every shard during a window.
///
/// Mutations (partition changes, new link blocks, delay inflation) only
/// happen between windows — at the barrier for process-emitted effects,
/// between `run_until` calls for harness calls — via [`Arc::make_mut`].
struct NetView<M> {
    n: usize,
    link: LinkConfig,
    blocks: Vec<LinkBlock>,
    partition: Option<Partition>,
    delay_inflation: Option<(u64, u64, RealTime)>,
    tagger: Option<fn(&M) -> &'static str>,
    wave_mode: WaveMode,
}

impl<M> Clone for NetView<M> {
    fn clone(&self) -> Self {
        NetView {
            n: self.n,
            link: self.link,
            blocks: self.blocks.clone(),
            partition: self.partition.clone(),
            delay_inflation: self.delay_inflation,
            tagger: self.tagger,
            wave_mode: self.wave_mode,
        }
    }
}

/// Destination of one outbox record.
enum RecDest {
    /// A unicast (or single-destination broadcast batch).
    One(NodeId),
    /// A batched broadcast run sharing one due time.
    Many(NodeBitSet),
}

/// One cross-window delivery, produced during a window and inserted into
/// the destination shard's wheel at the barrier. `(due, from, seq)` is
/// the canonical merge key: `seq` counts the sender's sends, so the key
/// depends only on stable ids and the sender's own event order.
struct OutRecord<M> {
    due: u64,
    from: NodeId,
    seq: u64,
    dest: RecDest,
    msg: Arc<M>,
}

/// A process-emitted global effect, deferred to the barrier.
enum GlobalFx {
    Crash { node: NodeId, down_for: Duration },
    Recover { node: NodeId },
    SetPartition(Option<Partition>),
}

/// One deferred global effect with its canonical `(due, emitter, seq)`
/// ordering key (`seq` counts the emitter's effects).
struct FxRec {
    due: u64,
    emitter: NodeId,
    seq: u64,
    fx: GlobalFx,
}

/// One shard: a contiguous id range of nodes, their RNG streams, and a
/// private timer wheel. During a window a shard is exclusively owned by
/// one thread; everything it emits beyond its own timers goes into
/// `outbox`/`fx` for the barrier.
struct Shard<M, O> {
    /// Global id of this shard's first node.
    first: u32,
    nodes: Vec<NodeSlot<M, O>>,
    rngs: Vec<StdRng>,
    wheel: TimerWheel<EventKind<M>>,
    outbox: Vec<OutRecord<M>>,
    fx: Vec<FxRec>,
    /// Per-local-node send counters (the `seq` of [`OutRecord`]).
    send_seq: Vec<u64>,
    /// Per-local-node effect counters (the `seq` of [`FxRec`]).
    fx_seq: Vec<u64>,
    observations: Vec<Observation<O>>,
    metrics: Metrics,
    events_processed: u64,
    /// Events processed in the current window (critical-path metric).
    window_events: u64,
    scratch_outbox: Vec<Effect<M, O>>,
    wave_group: Vec<EventKind<M>>,
    wave_batch: Vec<(NodeId, Arc<M>)>,
    bitset_pool: Vec<NodeBitSet>,
    batch_scratch: Vec<(u64, NodeId, Option<NodeBitSet>)>,
}

impl<M: Clone + Send + Sync, O: Send> Shard<M, O> {
    /// Local index of a node owned by this shard.
    fn li(&self, node: NodeId) -> usize {
        node.index() - self.first as usize
    }

    fn next_send_seq(&mut self, from: NodeId) -> u64 {
        let li = self.li(from);
        let s = self.send_seq[li];
        self.send_seq[li] += 1;
        s
    }

    fn push_fx(&mut self, at: RealTime, emitter: NodeId, fx: GlobalFx) {
        let li = self.li(emitter);
        let seq = self.fx_seq[li];
        self.fx_seq[li] += 1;
        self.fx.push(FxRec {
            due: at.as_nanos(),
            emitter,
            seq,
            fx,
        });
    }

    fn is_down(&self, node: NodeId, at: RealTime) -> bool {
        self.nodes[self.li(node)]
            .down_until
            .is_some_and(|until| at < until)
    }

    /// Processes every local event due in `[.., win_end]`.
    fn run_window(&mut self, win_end: u64, net: &NetView<M>) {
        self.window_events = 0;
        // The draw-free gate of the sequential loop, evaluated once per
        // window: post-storm (windowed execution never overlaps a storm)
        // only link jitter can draw during routing.
        let coalesce =
            net.wave_mode == WaveMode::Coalesced && net.link.delay_min == net.link.delay_max;
        while let Some(due) = self.wheel.peek_due() {
            if due > win_end {
                break;
            }
            let ev = self.wheel.pop().expect("peeked");
            let at = RealTime::from_nanos(ev.due);
            self.events_processed += 1;
            self.window_events += 1;
            if coalesce {
                self.dispatch_coalescing(at, ev.payload, net);
            } else {
                self.dispatch(at, ev.payload, net);
            }
        }
    }

    /// Same-instant wave coalescing, shard-local (see
    /// `Simulation::dispatch_coalescing` — identical structure, bounded
    /// to this shard's wheel).
    fn dispatch_coalescing(&mut self, at: RealTime, kind: EventKind<M>, net: &NetView<M>) {
        match kind {
            EventKind::Deliver { .. } | EventKind::BroadcastDeliver { .. } => {}
            other => {
                self.dispatch(at, other, net);
                return;
            }
        }
        if self.wheel.peek_due() != Some(at.as_nanos()) {
            // Lone entry: no wave to join.
            self.dispatch(at, kind, net);
            return;
        }
        debug_assert!(self.wave_group.is_empty());
        self.wave_group.push(kind);
        let mut trailing = None;
        while self.wheel.peek_due() == Some(at.as_nanos()) {
            let ev = self.wheel.pop().expect("peeked");
            self.events_processed += 1;
            self.window_events += 1;
            match ev.payload {
                k @ (EventKind::Deliver { .. } | EventKind::BroadcastDeliver { .. }) => {
                    self.wave_group.push(k);
                }
                other => {
                    trailing = Some(other);
                    break;
                }
            }
        }
        self.dispatch_wave(at, net);
        if let Some(ev) = trailing {
            self.dispatch(at, ev, net);
        }
    }

    /// Destination-major dispatch of one drained wave group (local node
    /// order ascending — which is ascending global id).
    fn dispatch_wave(&mut self, at: RealTime, net: &NetView<M>) {
        for li in 0..self.nodes.len() {
            let node = NodeId::new(self.first + li as u32);
            let mut batch = std::mem::take(&mut self.wave_batch);
            debug_assert!(batch.is_empty());
            for ev in &self.wave_group {
                match ev {
                    EventKind::Deliver { to, from, msg } if *to == node => {
                        batch.push((*from, Arc::clone(msg)));
                    }
                    EventKind::BroadcastDeliver { from, msg, dests } if dests.contains(node) => {
                        batch.push((*from, Arc::clone(msg)));
                    }
                    _ => {}
                }
            }
            if !batch.is_empty() {
                self.deliver_batch(at, node, &batch, net);
                batch.clear();
            }
            self.wave_batch = batch;
        }
        for ev in self.wave_group.drain(..) {
            if let EventKind::BroadcastDeliver { mut dests, .. } = ev {
                dests.clear();
                self.bitset_pool.push(dests);
            }
        }
    }

    fn dispatch(&mut self, at: RealTime, kind: EventKind<M>, net: &NetView<M>) {
        match kind {
            EventKind::Deliver { to, from, msg } => {
                self.deliver_to(at, to, from, &msg, net);
            }
            EventKind::BroadcastDeliver {
                from,
                msg,
                mut dests,
            } => {
                for to in dests.iter() {
                    self.deliver_to(at, to, from, &msg, net);
                }
                dests.clear();
                self.bitset_pool.push(dests);
            }
            EventKind::Timer { node, token } => {
                let li = self.li(node);
                self.nodes[li].timers.remove(&(token, at.as_nanos()));
                if self.is_down(node, at) {
                    return;
                }
                let mut outbox = std::mem::take(&mut self.scratch_outbox);
                {
                    let n = net.n;
                    let local = self.nodes[li].clock.local_at(at);
                    let slot = &mut self.nodes[li];
                    let rng = &mut self.rngs[li];
                    let mut words = move || rng.next_u64();
                    let mut ctx = Ctx {
                        me: node,
                        n,
                        now_local: local,
                        outbox: &mut outbox,
                        rng_words: &mut words,
                    };
                    slot.process.on_timer(&mut ctx, token);
                }
                self.apply_effects(at, node, &mut outbox, net);
                self.scratch_outbox = outbox;
            }
            // Shard wheels never hold injection entries (they stay with
            // the coordinator as post-storm no-ops).
            EventKind::Injection => {}
            EventKind::Recover { node } => {
                let li = self.li(node);
                let due_back = self.nodes[li].down_until.is_some_and(|until| until <= at);
                if due_back {
                    self.nodes[li].down_until = None;
                    self.run_recover(at, node, net);
                }
            }
        }
    }

    fn deliver_to(&mut self, at: RealTime, to: NodeId, from: NodeId, msg: &M, net: &NetView<M>) {
        if self.is_down(to, at) {
            self.metrics.swallowed += 1;
            return;
        }
        let li = self.li(to);
        let mut outbox = std::mem::take(&mut self.scratch_outbox);
        {
            let n = net.n;
            let local = self.nodes[li].clock.local_at(at);
            let slot = &mut self.nodes[li];
            let rng = &mut self.rngs[li];
            let mut words = move || rng.next_u64();
            let mut ctx = Ctx {
                me: to,
                n,
                now_local: local,
                outbox: &mut outbox,
                rng_words: &mut words,
            };
            slot.process.on_message(&mut ctx, from, msg);
        }
        self.metrics.delivered += 1;
        self.apply_effects(at, to, &mut outbox, net);
        self.scratch_outbox = outbox;
    }

    fn deliver_batch(
        &mut self,
        at: RealTime,
        to: NodeId,
        batch: &[(NodeId, Arc<M>)],
        net: &NetView<M>,
    ) {
        if self.is_down(to, at) {
            self.metrics.swallowed += batch.len() as u64;
            return;
        }
        let li = self.li(to);
        let mut outbox = std::mem::take(&mut self.scratch_outbox);
        {
            let n = net.n;
            let local = self.nodes[li].clock.local_at(at);
            let slot = &mut self.nodes[li];
            let rng = &mut self.rngs[li];
            let mut words = move || rng.next_u64();
            let mut ctx = Ctx {
                me: to,
                n,
                now_local: local,
                outbox: &mut outbox,
                rng_words: &mut words,
            };
            slot.process.on_message_batch(&mut ctx, batch);
        }
        self.metrics.delivered += batch.len() as u64;
        self.apply_effects(at, to, &mut outbox, net);
        self.scratch_outbox = outbox;
    }

    fn run_recover(&mut self, at: RealTime, node: NodeId, net: &NetView<M>) {
        let li = self.li(node);
        let mut outbox = std::mem::take(&mut self.scratch_outbox);
        {
            let n = net.n;
            let local = self.nodes[li].clock.local_at(at);
            let slot = &mut self.nodes[li];
            let rng = &mut self.rngs[li];
            let mut words = move || rng.next_u64();
            let mut ctx = Ctx {
                me: node,
                n,
                now_local: local,
                outbox: &mut outbox,
                rng_words: &mut words,
            };
            slot.process.on_recover(&mut ctx);
        }
        self.apply_effects(at, node, &mut outbox, net);
        self.scratch_outbox = outbox;
    }

    fn apply_effects(
        &mut self,
        at: RealTime,
        node: NodeId,
        effects: &mut Vec<Effect<M, O>>,
        net: &NetView<M>,
    ) {
        for e in effects.drain(..) {
            match e {
                Effect::Send { to, msg } => self.route(net, at, node, to, Arc::new(msg)),
                Effect::Broadcast { msg } => self.route_broadcast(net, at, node, msg),
                Effect::TimerAtLocal {
                    at: local_at,
                    token,
                } => {
                    let clock = self.nodes[self.li(node)].clock;
                    let real = clock.real_of_local(local_at).max(at);
                    self.schedule_timer(node, real, token);
                }
                Effect::TimerAfter { after, token } => {
                    let clock = self.nodes[self.li(node)].clock;
                    let real = at + clock.scale_to_real(after);
                    self.schedule_timer(node, real, token);
                }
                Effect::CancelTimer { token } => {
                    self.cancel_timers(node, token);
                }
                Effect::Observe(obs) => {
                    let clock = self.nodes[self.li(node)].clock;
                    self.observations.push(Observation {
                        node,
                        real: at,
                        local: clock.local_at(at),
                        event: obs,
                    });
                }
                Effect::CrashNode {
                    node: target,
                    down_for,
                } => self.push_fx(
                    at,
                    node,
                    GlobalFx::Crash {
                        node: target,
                        down_for,
                    },
                ),
                Effect::RecoverNode { node: target } => {
                    self.push_fx(at, node, GlobalFx::Recover { node: target });
                }
                Effect::SetPartition { partition } => {
                    self.push_fx(at, node, GlobalFx::SetPartition(partition));
                }
            }
        }
    }

    /// Routes one unicast into the outbox (post-storm: no drop/corrupt/
    /// duplicate draws exist; only link jitter can draw, from the
    /// sender's stream).
    fn route(&mut self, net: &NetView<M>, at: RealTime, from: NodeId, to: NodeId, msg: Arc<M>) {
        if to.index() >= net.n {
            self.metrics.blocked += 1;
            return;
        }
        self.metrics.sent += 1;
        if let Some(tagger) = net.tagger {
            *self.metrics.per_tag.entry(tagger(&msg)).or_insert(0) += 1;
        }
        if net
            .blocks
            .iter()
            .any(|b| b.from == from && b.to == to && at < b.until)
        {
            self.metrics.blocked += 1;
            return;
        }
        if net.partition.as_ref().is_some_and(|p| !p.allows(from, to)) {
            self.metrics.blocked += 1;
            return;
        }
        let delay = self.sample_delay(net, at, from, net.link.delay_min, net.link.delay_max);
        let due = (at + delay).as_nanos();
        let seq = self.next_send_seq(from);
        self.outbox.push(OutRecord {
            due,
            from,
            seq,
            dest: RecDest::One(to),
            msg,
        });
    }

    /// Fans one broadcast out into outbox records, batching consecutive
    /// same-due destinations exactly as the sequential batched fan-out
    /// does (under a deterministic delay: one record, full bitmap).
    /// `BroadcastMode` is ignored here — records are always batched; the
    /// per-destination A/B knob lives in the sequential golden model,
    /// and per-node delivery order is identical either way.
    fn route_broadcast(&mut self, net: &NetView<M>, at: RealTime, from: NodeId, msg: M) {
        let shared = Arc::new(msg);
        let mut batches = std::mem::take(&mut self.batch_scratch);
        debug_assert!(batches.is_empty());
        for i in 0..net.n {
            let to = NodeId::new(i as u32);
            self.metrics.sent += 1;
            if let Some(tagger) = net.tagger {
                *self.metrics.per_tag.entry(tagger(&shared)).or_insert(0) += 1;
            }
            if net
                .blocks
                .iter()
                .any(|b| b.from == from && b.to == to && at < b.until)
            {
                self.metrics.blocked += 1;
                continue;
            }
            if net.partition.as_ref().is_some_and(|p| !p.allows(from, to)) {
                self.metrics.blocked += 1;
                continue;
            }
            let due = (at
                + self.sample_delay(net, at, from, net.link.delay_min, net.link.delay_max))
            .as_nanos();
            Self::batch_insert(&mut batches, &mut self.bitset_pool, due, to);
        }
        for (due, first, dests) in batches.drain(..) {
            let seq = self.next_send_seq(from);
            let dest = match dests {
                None => RecDest::One(first),
                Some(d) => RecDest::Many(d),
            };
            self.outbox.push(OutRecord {
                due,
                from,
                seq,
                dest,
                msg: Arc::clone(&shared),
            });
        }
        self.batch_scratch = batches;
    }

    /// Same last-run merge as `Simulation::batch_insert`, on record dues.
    fn batch_insert(
        batches: &mut Vec<(u64, NodeId, Option<NodeBitSet>)>,
        pool: &mut Vec<NodeBitSet>,
        due: u64,
        to: NodeId,
    ) {
        if let Some((d, first, dests)) = batches.last_mut() {
            if *d == due {
                let dests = dests.get_or_insert_with(|| {
                    let mut s = pool.pop().unwrap_or_default();
                    s.insert(*first);
                    s
                });
                dests.insert(to);
                return;
            }
        }
        batches.push((due, to, None));
    }

    fn sample_delay(
        &mut self,
        net: &NetView<M>,
        at: RealTime,
        from: NodeId,
        min: Duration,
        max: Duration,
    ) -> Duration {
        let raw = if min == max {
            min
        } else {
            let lo = min.as_nanos();
            let hi = max.as_nanos();
            let li = self.li(from);
            Duration::from_nanos(self.rngs[li].gen_range(lo..=hi))
        };
        match net.delay_inflation {
            Some((num, den, until)) if at < until => raw.saturating_scale(num, den),
            _ => raw,
        }
    }

    /// Shard-local timer scheduling with the `(token, due)` dedup
    /// registry — identical semantics to `Simulation::schedule_timer`.
    fn schedule_timer(&mut self, node: NodeId, at: RealTime, token: u64) {
        let li = self.li(node);
        let key = (token, at.as_nanos());
        if self.nodes[li].timers.contains_key(&key) {
            return;
        }
        let handle = self
            .wheel
            .insert(at.as_nanos(), EventKind::Timer { node, token });
        self.nodes[li].timers.insert(key, handle);
    }

    fn cancel_timers(&mut self, node: NodeId, token: u64) -> usize {
        let li = self.li(node);
        let mut cancelled = 0;
        loop {
            let slot = &mut self.nodes[li].timers;
            let Some((&key, _)) = slot.range((token, 0)..=(token, u64::MAX)).next() else {
                break;
            };
            let handle = slot.remove(&key).expect("key just observed");
            if self.wheel.cancel(handle) {
                cancelled += 1;
            }
        }
        cancelled
    }
}

/// Cross-thread window control: the coordinator publishes an epoch and a
/// window end; each worker runs its shard's window and reports done.
struct CtlState<M> {
    epoch: u64,
    win_end: u64,
    net: Arc<NetView<M>>,
    done: usize,
    shutdown: bool,
}

struct Ctl<M> {
    state: Mutex<CtlState<M>>,
    work: Condvar,
    done: Condvar,
}

fn worker_loop<M: Clone + Send + Sync, O: Send>(shard: &Mutex<Shard<M, O>>, ctl: &Ctl<M>) {
    let mut my_epoch = 0u64;
    loop {
        let (win_end, net) = {
            let mut st = ctl.state.lock().expect("ctl poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != my_epoch {
                    my_epoch = st.epoch;
                    break (st.win_end, Arc::clone(&st.net));
                }
                st = ctl.work.wait(st).expect("ctl poisoned");
            }
        };
        shard
            .lock()
            .expect("shard poisoned")
            .run_window(win_end, &net);
        let mut st = ctl.state.lock().expect("ctl poisoned");
        st.done += 1;
        drop(st);
        ctl.done.notify_all();
    }
}

/// The conservative lookahead for a window starting at `at_ns`: the
/// minimum link delay, shrunk when a delay-*deflation* fault
/// (`inflate_delays` with `num < den`) is in force, and clamped to at
/// least one nanosecond (a width-1 window degrades gracefully to
/// instant-by-instant stepping; zero-delay deliveries land in the next
/// same-instant window).
fn lookahead_ns<M>(net: &NetView<M>, at_ns: u64) -> u64 {
    let mut l = net.link.delay_min.as_nanos();
    if let Some((num, den, until)) = net.delay_inflation {
        if num < den && at_ns < until.as_nanos() {
            l = Duration::from_nanos(l)
                .saturating_scale(num, den)
                .as_nanos();
        }
    }
    l.max(1)
}

fn shard_of(chunk: usize, node: NodeId) -> usize {
    node.index() / chunk
}

/// Inserts one contiguous same-shard destination group of a broadcast
/// record into that shard's wheel.
fn insert_group<M: Clone + Send + Sync, O: Send>(
    shards: &[Mutex<Shard<M, O>>],
    shard_idx: usize,
    due: u64,
    from: NodeId,
    msg: &Arc<M>,
    ids: &[NodeId],
) {
    let mut sh = shards[shard_idx].lock().expect("shard poisoned");
    if ids.len() == 1 {
        sh.wheel.insert(
            due,
            EventKind::Deliver {
                to: ids[0],
                from,
                msg: Arc::clone(msg),
            },
        );
    } else {
        let mut set = sh.bitset_pool.pop().unwrap_or_default();
        for id in ids {
            set.insert(*id);
        }
        sh.wheel.insert(
            due,
            EventKind::BroadcastDeliver {
                from,
                msg: Arc::clone(msg),
                dests: set,
            },
        );
    }
}

/// The window barrier: drains every shard's outbox and deferred-effect
/// list, merges records in canonical `(due, from, seq)` order into the
/// destination wheels, applies global effects in `(due, emitter, seq)`
/// order, and repeats until a pass produces nothing new (a recovery hook
/// run by an effect may emit further sends and effects).
fn barrier_exchange<M: Clone + Send + Sync, O: Send>(
    shards: &[Mutex<Shard<M, O>>],
    net: &mut Arc<NetView<M>>,
    chunk: usize,
) {
    let mut records: Vec<OutRecord<M>> = Vec::new();
    let mut fxs: Vec<FxRec> = Vec::new();
    let mut group: Vec<NodeId> = Vec::new();
    loop {
        for sh in shards {
            let mut s = sh.lock().expect("shard poisoned");
            records.append(&mut s.outbox);
            fxs.append(&mut s.fx);
        }
        if records.is_empty() && fxs.is_empty() {
            break;
        }
        records.sort_by_key(|r| (r.due, r.from.index(), r.seq));
        for rec in records.drain(..) {
            match rec.dest {
                RecDest::One(to) => {
                    let s = shard_of(chunk, to);
                    shards[s].lock().expect("shard poisoned").wheel.insert(
                        rec.due,
                        EventKind::Deliver {
                            to,
                            from: rec.from,
                            msg: rec.msg,
                        },
                    );
                }
                RecDest::Many(dests) => {
                    // Split the bitmap into contiguous per-shard runs
                    // (ascending id order keeps runs contiguous).
                    let mut run_shard = usize::MAX;
                    for to in dests.iter() {
                        let s = shard_of(chunk, to);
                        if s != run_shard && !group.is_empty() {
                            insert_group(shards, run_shard, rec.due, rec.from, &rec.msg, &group);
                            group.clear();
                        }
                        run_shard = s;
                        group.push(to);
                    }
                    if !group.is_empty() {
                        insert_group(shards, run_shard, rec.due, rec.from, &rec.msg, &group);
                        group.clear();
                    }
                }
            }
        }
        fxs.sort_by_key(|f| (f.due, f.emitter.index(), f.seq));
        for f in fxs.drain(..) {
            let at = RealTime::from_nanos(f.due);
            match f.fx {
                GlobalFx::Crash { node, down_for } => {
                    let s = shard_of(chunk, node);
                    let mut sh = shards[s].lock().expect("shard poisoned");
                    let li = sh.li(node);
                    let until = at + down_for;
                    sh.nodes[li].down_until = Some(until);
                    sh.wheel
                        .insert(until.as_nanos(), EventKind::Recover { node });
                }
                GlobalFx::Recover { node } => {
                    let s = shard_of(chunk, node);
                    let mut sh = shards[s].lock().expect("shard poisoned");
                    let li = sh.li(node);
                    if sh.nodes[li].down_until.take().is_some() {
                        let net_ref = Arc::clone(net);
                        sh.run_recover(at, node, &net_ref);
                    }
                }
                GlobalFx::SetPartition(p) => {
                    Arc::make_mut(net).partition = p;
                }
            }
        }
    }
}

/// Windowed (post-decomposition) execution state.
struct Windowed<M, O> {
    shards: Vec<Mutex<Shard<M, O>>>,
    net: Arc<NetView<M>>,
    now: RealTime,
    /// Nodes-per-shard divisor behind [`shard_of`].
    chunk: usize,
    /// Pending storm-injection dues (descending; post-storm no-ops that
    /// still count as processed events, matching the sequential trace).
    injections: Vec<u64>,
}

/// Aggregated parallelism accounting across all windows run so far.
#[derive(Debug, Clone, Copy, Default)]
struct ParStats {
    windows: u64,
    windowed_events: u64,
    critical_events: u64,
}

enum State<M, O> {
    /// Sequential prefix (storm still possible, or not yet decomposed).
    Warmup(Box<Simulation<M, O>>),
    Windowed(Windowed<M, O>),
    /// Transient placeholder while decomposing.
    Gone,
}

/// The sharded conservative-lookahead parallel simulator.
///
/// Built via [`SimBuilder::build_sharded`] (which forces
/// [`RngMode::PerNode`]); behaviourally a drop-in for [`Simulation`] on
/// the post-storm harness surface. See the [module docs](self) for the
/// execution model and the determinism argument.
pub struct ShardedSim<M, O> {
    threads: usize,
    /// Real time until which execution stays on the sequential engine
    /// (the storm end; `ZERO` when no storm is configured).
    warmup_until: RealTime,
    state: State<M, O>,
    observations: Vec<Observation<O>>,
    metrics: Metrics,
    events_processed: u64,
    stats: ParStats,
    obs_scratch: Vec<Observation<O>>,
}

impl<M: Clone + Send + Sync, O: Send> ShardedSim<M, O> {
    fn from_builder(builder: SimBuilder<M, O>, threads: usize) -> Self {
        let base = builder.rng_mode(RngMode::PerNode).build();
        let warmup_until = base.storm.map_or(RealTime::ZERO, |s| s.until);
        ShardedSim {
            threads: threads.max(1),
            warmup_until,
            state: State::Warmup(Box::new(base)),
            observations: Vec::new(),
            metrics: Metrics::default(),
            events_processed: 0,
            stats: ParStats::default(),
            obs_scratch: Vec::new(),
        }
    }

    /// Tears the sequential simulation apart into shards: moves nodes,
    /// RNG streams, logs and every in-flight wheel entry (rebuilding the
    /// timer dedup registry against the shard wheels), and freezes the
    /// network state into the shared [`NetView`].
    fn decompose(&mut self) {
        let State::Warmup(base) = std::mem::replace(&mut self.state, State::Gone) else {
            unreachable!("decompose called twice");
        };
        let mut base = *base;
        base.ensure_started();
        let n = base.nodes.len();
        let chunk = n.div_ceil(self.threads).max(1);
        let num_shards = n.div_ceil(chunk);
        let rngs = std::mem::replace(&mut base.rngs, RngStreams::new(RngMode::Global, 0, 0));
        let RngStreams::PerNode {
            nodes: node_rngs, ..
        } = rngs
        else {
            unreachable!("build_sharded forces RngMode::PerNode");
        };
        let mut slot_iter = std::mem::take(&mut base.nodes).into_iter();
        let mut rng_iter = node_rngs.into_iter();
        let mut shards: Vec<Shard<M, O>> = (0..num_shards)
            .map(|s| {
                let first = s * chunk;
                let count = chunk.min(n - first);
                let mut nodes: Vec<NodeSlot<M, O>> = slot_iter.by_ref().take(count).collect();
                for slot in &mut nodes {
                    // Stale handles point into the old global wheel;
                    // rebuilt below while draining it.
                    slot.timers.clear();
                }
                Shard {
                    first: first as u32,
                    nodes,
                    rngs: rng_iter.by_ref().take(count).collect(),
                    wheel: TimerWheel::for_span_hint(base.link.delay_max.as_nanos()),
                    outbox: Vec::new(),
                    fx: Vec::new(),
                    send_seq: vec![0; count],
                    fx_seq: vec![0; count],
                    observations: Vec::new(),
                    metrics: Metrics::default(),
                    events_processed: 0,
                    window_events: 0,
                    scratch_outbox: Vec::new(),
                    wave_group: Vec::new(),
                    wave_batch: Vec::new(),
                    bitset_pool: Vec::new(),
                    batch_scratch: Vec::new(),
                }
            })
            .collect();
        // Drain the global wheel in (due, seq) order; per-shard relative
        // order is preserved by insertion order.
        let mut injections = Vec::new();
        let mut group: Vec<NodeId> = Vec::new();
        while let Some(exp) = base.queue.pop() {
            match exp.payload {
                EventKind::Deliver { to, from, msg } => {
                    shards[shard_of(chunk, to)]
                        .wheel
                        .insert(exp.due, EventKind::Deliver { to, from, msg });
                }
                EventKind::BroadcastDeliver { from, msg, dests } => {
                    let mut run_shard = usize::MAX;
                    for to in dests.iter() {
                        let s = shard_of(chunk, to);
                        if s != run_shard && !group.is_empty() {
                            Self::decompose_group(
                                &mut shards[run_shard],
                                exp.due,
                                from,
                                &msg,
                                &group,
                            );
                            group.clear();
                        }
                        run_shard = s;
                        group.push(to);
                    }
                    if !group.is_empty() {
                        Self::decompose_group(&mut shards[run_shard], exp.due, from, &msg, &group);
                        group.clear();
                    }
                }
                EventKind::Timer { node, token } => {
                    let sh = &mut shards[shard_of(chunk, node)];
                    let li = sh.li(node);
                    let handle = sh.wheel.insert(exp.due, EventKind::Timer { node, token });
                    sh.nodes[li].timers.insert((token, exp.due), handle);
                }
                EventKind::Injection => injections.push(exp.due),
                EventKind::Recover { node } => {
                    shards[shard_of(chunk, node)]
                        .wheel
                        .insert(exp.due, EventKind::Recover { node });
                }
            }
        }
        injections.reverse();
        let net = Arc::new(NetView {
            n,
            link: base.link,
            blocks: std::mem::take(&mut base.blocks),
            partition: base.partition.take(),
            delay_inflation: base.delay_inflation,
            tagger: base.tagger,
            wave_mode: base.wave_mode,
        });
        self.observations = std::mem::take(&mut base.observations);
        self.metrics = std::mem::take(&mut base.metrics);
        self.events_processed = base.events_processed;
        self.state = State::Windowed(Windowed {
            shards: shards.into_iter().map(Mutex::new).collect(),
            net,
            now: base.now,
            chunk,
            injections,
        });
    }

    fn decompose_group(
        shard: &mut Shard<M, O>,
        due: u64,
        from: NodeId,
        msg: &Arc<M>,
        ids: &[NodeId],
    ) {
        if ids.len() == 1 {
            shard.wheel.insert(
                due,
                EventKind::Deliver {
                    to: ids[0],
                    from,
                    msg: Arc::clone(msg),
                },
            );
        } else {
            let mut set = NodeBitSet::default();
            for id in ids {
                set.insert(*id);
            }
            shard.wheel.insert(
                due,
                EventKind::BroadcastDeliver {
                    from,
                    msg: Arc::clone(msg),
                    dests: set,
                },
            );
        }
    }

    /// Runs until real time `t` (inclusive), windowed. During a
    /// configured storm this runs the sequential engine; the switchover
    /// happens at the storm end.
    pub fn run_until(&mut self, t: RealTime) {
        if let State::Warmup(base) = &mut self.state {
            if base.now() < self.warmup_until {
                base.run_until(self.warmup_until.min(t));
                if t < self.warmup_until {
                    return;
                }
            }
            self.decompose();
        }
        self.run_windows(t);
        self.merge_run_results();
    }

    /// Runs for a real-time span.
    pub fn run_for(&mut self, span: Duration) {
        let target = self.now() + span;
        self.run_until(target);
    }

    fn run_windows(&mut self, t: RealTime) {
        let ShardedSim {
            state,
            stats,
            events_processed,
            ..
        } = self;
        let State::Windowed(w) = state else {
            unreachable!("run_windows before decompose");
        };
        let t_ns = t.as_nanos();
        if w.shards.len() <= 1 {
            Self::run_windows_inline(w, stats, events_processed, t_ns);
        } else {
            Self::run_windows_threaded(w, stats, events_processed, t_ns);
        }
        w.now = w.now.max(t);
    }

    /// Global minimum due over every shard wheel and pending injection
    /// (`None` when fully drained). Callers hold no shard locks.
    fn peek_min(shards: &[Mutex<Shard<M, O>>], injections: &[u64]) -> Option<u64> {
        let mut gmin = injections.last().copied();
        for sh in shards {
            if let Some(due) = sh.lock().expect("shard poisoned").wheel.peek_due() {
                gmin = Some(gmin.map_or(due, |g| g.min(due)));
            }
        }
        gmin
    }

    /// Drains injection no-ops due in the window (each counts as one
    /// processed event, exactly like the sequential post-storm no-op
    /// dispatch of `EventKind::Injection`).
    fn drain_injections(injections: &mut Vec<u64>, win_end: u64, events_processed: &mut u64) {
        while injections.last().is_some_and(|&d| d <= win_end) {
            injections.pop();
            *events_processed += 1;
        }
    }

    /// Reads per-shard window event counts into the parallelism stats.
    fn account_window(shards: &[Mutex<Shard<M, O>>], stats: &mut ParStats) {
        let mut sum = 0u64;
        let mut mx = 0u64;
        for sh in shards {
            let e = sh.lock().expect("shard poisoned").window_events;
            sum += e;
            mx = mx.max(e);
        }
        stats.windows += 1;
        stats.windowed_events += sum;
        stats.critical_events += mx;
    }

    fn run_windows_inline(
        w: &mut Windowed<M, O>,
        stats: &mut ParStats,
        events_processed: &mut u64,
        t_ns: u64,
    ) {
        while let Some(gmin) = Self::peek_min(&w.shards, &w.injections) {
            if gmin > t_ns {
                break;
            }
            let l = lookahead_ns(&w.net, gmin);
            let win_end = gmin.saturating_add(l - 1).min(t_ns);
            Self::drain_injections(&mut w.injections, win_end, events_processed);
            for sh in &w.shards {
                sh.lock()
                    .expect("shard poisoned")
                    .run_window(win_end, &w.net);
            }
            Self::account_window(&w.shards, stats);
            barrier_exchange(&w.shards, &mut w.net, w.chunk);
            w.now = w.now.max(RealTime::from_nanos(win_end));
        }
    }

    fn run_windows_threaded(
        w: &mut Windowed<M, O>,
        stats: &mut ParStats,
        events_processed: &mut u64,
        t_ns: u64,
    ) {
        // Nothing due in range: skip thread spawn entirely.
        match Self::peek_min(&w.shards, &w.injections) {
            Some(g) if g <= t_ns => {}
            _ => return,
        }
        let Windowed {
            shards,
            net,
            now,
            chunk,
            injections,
        } = w;
        let num = shards.len();
        let ctl = Ctl {
            state: Mutex::new(CtlState {
                epoch: 0,
                win_end: 0,
                net: Arc::clone(net),
                done: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        };
        let shards: &[Mutex<Shard<M, O>>] = &*shards;
        std::thread::scope(|scope| {
            let ctl_ref = &ctl;
            for shard in shards.iter().skip(1) {
                scope.spawn(move || worker_loop(shard, ctl_ref));
            }
            while let Some(gmin) = Self::peek_min(shards, injections) {
                if gmin > t_ns {
                    break;
                }
                let l = lookahead_ns(net, gmin);
                let win_end = gmin.saturating_add(l - 1).min(t_ns);
                Self::drain_injections(injections, win_end, events_processed);
                {
                    let mut st = ctl.state.lock().expect("ctl poisoned");
                    st.epoch += 1;
                    st.win_end = win_end;
                    st.done = 0;
                    if !Arc::ptr_eq(&st.net, net) {
                        st.net = Arc::clone(net);
                    }
                }
                ctl.work.notify_all();
                // The coordinator doubles as shard 0's worker.
                shards[0]
                    .lock()
                    .expect("shard poisoned")
                    .run_window(win_end, net);
                {
                    let mut st = ctl.state.lock().expect("ctl poisoned");
                    while st.done < num - 1 {
                        let (guard, timeout) = ctl
                            .done
                            .wait_timeout(st, StdDuration::from_millis(200))
                            .expect("ctl poisoned");
                        st = guard;
                        if timeout.timed_out() {
                            // A worker that panicked inside its window
                            // poisons its shard mutex; surface that
                            // instead of waiting forever.
                            assert!(
                                !shards.iter().any(Mutex::is_poisoned),
                                "sharded simulation worker panicked"
                            );
                        }
                    }
                }
                Self::account_window(shards, stats);
                barrier_exchange(shards, net, *chunk);
                *now = (*now).max(RealTime::from_nanos(win_end));
            }
            let mut st = ctl.state.lock().expect("ctl poisoned");
            st.shutdown = true;
            drop(st);
            ctl.work.notify_all();
        });
    }

    /// Folds each shard's run-local logs into the coordinator's: metrics
    /// and event counts sum; observations concatenate in shard order and
    /// stable-sort by `(real, node)` — per-(node, instant) emission order
    /// is preserved (one node lives in one shard), and appended chunks
    /// keep the log globally sorted because later runs process strictly
    /// later dues.
    fn merge_run_results(&mut self) {
        let State::Windowed(w) = &mut self.state else {
            return;
        };
        let mut scratch = std::mem::take(&mut self.obs_scratch);
        debug_assert!(scratch.is_empty());
        for sh in &mut w.shards {
            let s = sh.get_mut().expect("shard poisoned");
            scratch.append(&mut s.observations);
            merge_metrics(&mut self.metrics, std::mem::take(&mut s.metrics));
            self.events_processed += std::mem::take(&mut s.events_processed);
        }
        scratch.sort_by_key(|o| (o.real.as_nanos(), o.node.index()));
        self.observations.append(&mut scratch);
        self.obs_scratch = scratch;
    }

    /// Mutable shard + local index for a node (between runs only).
    fn node_shard(&mut self, node: NodeId) -> (&mut Shard<M, O>, usize) {
        let State::Windowed(w) = &mut self.state else {
            unreachable!("node_shard in warmup");
        };
        let sh = w.shards[node.index() / w.chunk]
            .get_mut()
            .expect("shard poisoned");
        let li = sh.li(node);
        (sh, li)
    }

    // ------------------------------------------------------------------
    // The harness-facing surface, mirroring `Simulation`.
    // ------------------------------------------------------------------

    /// Current real time.
    #[must_use]
    pub fn now(&self) -> RealTime {
        match &self.state {
            State::Warmup(b) => b.now(),
            State::Windowed(w) => w.now,
            State::Gone => unreachable!(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        match &self.state {
            State::Warmup(b) => b.node_count(),
            State::Windowed(w) => w.net.n,
            State::Gone => unreachable!(),
        }
    }

    /// Worker-thread count this simulator was built with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The clock of `node`, by value (clocks are `Copy`; the slot lives
    /// behind a shard mutex, so no reference can be handed out). Worker
    /// threads only exist inside `run_until`, so the shard lock here is
    /// always uncontended.
    #[must_use]
    pub fn clock_of(&self, node: NodeId) -> DriftClock {
        match &self.state {
            State::Warmup(b) => *b.clock(node),
            State::Windowed(w) => {
                let sh = w.shards[node.index() / w.chunk]
                    .lock()
                    .expect("shard poisoned");
                let li = sh.li(node);
                sh.nodes[li].clock
            }
            State::Gone => unreachable!(),
        }
    }

    /// All observations emitted so far (merged at each `run_until`).
    #[must_use]
    pub fn observations(&self) -> &[Observation<O>] {
        match &self.state {
            State::Warmup(b) => b.observations(),
            State::Windowed(_) => &self.observations,
            State::Gone => unreachable!(),
        }
    }

    /// Drains the observation log.
    pub fn take_observations(&mut self) -> Vec<Observation<O>> {
        match &mut self.state {
            State::Warmup(b) => b.take_observations(),
            State::Windowed(_) => std::mem::take(&mut self.observations),
            State::Gone => unreachable!(),
        }
    }

    /// Aggregate counters (merged at each `run_until`).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        match &self.state {
            State::Warmup(b) => b.metrics(),
            State::Windowed(_) => &self.metrics,
            State::Gone => unreachable!(),
        }
    }

    /// Number of events processed so far, across all shards.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        match &self.state {
            State::Warmup(b) => b.events_processed(),
            State::Windowed(_) => self.events_processed,
            State::Gone => unreachable!(),
        }
    }

    /// Total events processed inside windows (the numerator of the
    /// critical-path parallelism bound). Zero before decomposition.
    #[must_use]
    pub fn windowed_events(&self) -> u64 {
        self.stats.windowed_events
    }

    /// Sum over windows of the *largest* per-shard event count — the
    /// critical path: wall clock can never beat this many sequential
    /// event dispatches no matter how many threads run. The achievable
    /// speedup bound is `windowed_events / critical_events`.
    #[must_use]
    pub fn critical_events(&self) -> u64 {
        self.stats.critical_events
    }

    /// Number of lookahead windows run so far.
    #[must_use]
    pub fn windows_run(&self) -> u64 {
        self.stats.windows
    }

    /// The critical-path parallelism bound `windowed / critical` (1.0
    /// when nothing windowed ran yet).
    #[must_use]
    pub fn parallelism(&self) -> f64 {
        if self.stats.critical_events == 0 {
            1.0
        } else {
            self.stats.windowed_events as f64 / self.stats.critical_events as f64
        }
    }

    /// Marks `node` down until the given real time.
    pub fn set_down_until(&mut self, node: NodeId, until: RealTime) {
        match &mut self.state {
            State::Warmup(b) => b.set_down_until(node, until),
            State::Windowed(_) => {
                let (sh, li) = self.node_shard(node);
                sh.nodes[li].down_until = Some(until);
            }
            State::Gone => unreachable!(),
        }
    }

    /// Blocks the directed link `from → to` until the given real time.
    pub fn block_link(&mut self, from: NodeId, to: NodeId, until: RealTime) {
        match &mut self.state {
            State::Warmup(b) => b.block_link(from, to, until),
            State::Windowed(w) => {
                Arc::make_mut(&mut w.net)
                    .blocks
                    .push(LinkBlock { from, to, until });
            }
            State::Gone => unreachable!(),
        }
    }

    /// Crashes `node` for `down_for` and schedules its recovery (see
    /// [`Simulation::crash_node`]).
    pub fn crash_node(&mut self, node: NodeId, down_for: Duration) {
        match &mut self.state {
            State::Warmup(b) => b.crash_node(node, down_for),
            State::Windowed(w) => {
                let until = w.now + down_for;
                let sh = w.shards[node.index() / w.chunk]
                    .get_mut()
                    .expect("shard poisoned");
                let li = sh.li(node);
                sh.nodes[li].down_until = Some(until);
                sh.wheel
                    .insert(until.as_nanos(), EventKind::Recover { node });
            }
            State::Gone => unreachable!(),
        }
    }

    /// Recovers a crashed node immediately, running its recovery hook
    /// and flushing whatever it emits into the shard wheels.
    pub fn recover_node(&mut self, node: NodeId) {
        match &mut self.state {
            State::Warmup(b) => b.recover_node(node),
            State::Windowed(w) => {
                let at = w.now;
                let net = Arc::clone(&w.net);
                {
                    let sh = w.shards[node.index() / w.chunk]
                        .get_mut()
                        .expect("shard poisoned");
                    let li = sh.li(node);
                    if sh.nodes[li].down_until.take().is_none() {
                        return;
                    }
                    sh.run_recover(at, node, &net);
                }
                barrier_exchange(&w.shards, &mut w.net, w.chunk);
                self.merge_run_results();
            }
            State::Gone => unreachable!(),
        }
    }

    /// Installs (or heals, with `None`) a network partition.
    pub fn set_partition(&mut self, partition: Option<Partition>) {
        match &mut self.state {
            State::Warmup(b) => b.set_partition(partition),
            State::Windowed(w) => {
                Arc::make_mut(&mut w.net).partition = partition;
            }
            State::Gone => unreachable!(),
        }
    }

    /// The partition currently in force, if any.
    #[must_use]
    pub fn partition(&self) -> Option<&Partition> {
        match &self.state {
            State::Warmup(b) => b.partition(),
            State::Windowed(w) => w.net.partition.as_ref(),
            State::Gone => unreachable!(),
        }
    }

    /// Fault injection: jumps `node`'s clock (see
    /// [`Simulation::skew_clock`]).
    pub fn skew_clock(&mut self, node: NodeId, jump: Duration, new_rate_ppm: Option<i32>) {
        match &mut self.state {
            State::Warmup(b) => b.skew_clock(node, jump, new_rate_ppm),
            State::Windowed(w) => {
                let now = w.now;
                let sh = w.shards[node.index() / w.chunk]
                    .get_mut()
                    .expect("shard poisoned");
                let li = sh.li(node);
                let slot = &mut sh.nodes[li];
                slot.clock = slot.clock.jumped(now, jump, new_rate_ppm);
            }
            State::Gone => unreachable!(),
        }
    }

    /// Fault injection: scales every sampled link delay by `num/den`
    /// until the given real time. A deflation (`num < den`) also shrinks
    /// the lookahead window, preserving the conservative bound.
    pub fn inflate_delays(&mut self, num: u64, den: u64, until: RealTime) {
        assert!(den > 0, "inflation denominator must be positive");
        match &mut self.state {
            State::Warmup(b) => b.inflate_delays(num, den, until),
            State::Windowed(w) => {
                Arc::make_mut(&mut w.net).delay_inflation = Some((num, den, until));
            }
            State::Gone => unreachable!(),
        }
    }

    /// Fault injection: cancels every pending `token` timer of `node`.
    pub fn cancel_node_timer(&mut self, node: NodeId, token: u64) -> usize {
        match &mut self.state {
            State::Warmup(b) => b.cancel_node_timer(node, token),
            State::Windowed(_) => {
                let (sh, _) = self.node_shard(node);
                sh.cancel_timers(node, token)
            }
            State::Gone => unreachable!(),
        }
    }

    /// Fault injection: plants a spurious `token` timer `after` from now.
    pub fn plant_timer(&mut self, node: NodeId, after: Duration, token: u64) {
        match &mut self.state {
            State::Warmup(b) => b.plant_timer(node, after, token),
            State::Windowed(w) => {
                let at = w.now + after;
                let sh = w.shards[node.index() / w.chunk]
                    .get_mut()
                    .expect("shard poisoned");
                sh.schedule_timer(node, at, token);
            }
            State::Gone => unreachable!(),
        }
    }

    /// Mutable access to a node's process (harness fault injection).
    pub fn process_mut(&mut self, node: NodeId) -> &mut dyn Process<M, O> {
        match &mut self.state {
            State::Warmup(b) => b.process_mut(node),
            State::Windowed(w) => {
                let sh = w.shards[node.index() / w.chunk]
                    .get_mut()
                    .expect("shard poisoned");
                let li = sh.li(node);
                &mut *sh.nodes[li].process
            }
            State::Gone => unreachable!(),
        }
    }

    /// Externally injects a message with a forged sender identity.
    pub fn inject_message(&mut self, at: RealTime, from: NodeId, to: NodeId, msg: M) {
        match &mut self.state {
            State::Warmup(b) => b.inject_message(at, from, to, msg),
            State::Windowed(w) => {
                let at = at.max(w.now);
                self.metrics.injected += 1;
                let sh = w.shards[to.index() / w.chunk]
                    .get_mut()
                    .expect("shard poisoned");
                sh.wheel.insert(
                    at.as_nanos(),
                    EventKind::Deliver {
                        to,
                        from,
                        msg: Arc::new(msg),
                    },
                );
            }
            State::Gone => unreachable!(),
        }
    }

    /// Number of pending events across every shard wheel (plus pending
    /// post-storm injection no-ops).
    #[must_use]
    pub fn queue_len(&mut self) -> usize {
        match &mut self.state {
            State::Warmup(b) => b.queue_len(),
            State::Windowed(w) => {
                let mut total = w.injections.len();
                for sh in &mut w.shards {
                    total += sh.get_mut().expect("shard poisoned").wheel.len();
                }
                total
            }
            State::Gone => unreachable!(),
        }
    }
}

fn merge_metrics(into: &mut Metrics, from: Metrics) {
    into.sent += from.sent;
    into.delivered += from.delivered;
    into.dropped += from.dropped;
    into.corrupted += from.corrupted;
    into.duplicated += from.duplicated;
    into.injected += from.injected;
    into.blocked += from.blocked;
    into.swallowed += from.swallowed;
    for (k, v) in from.per_tag {
        *into.per_tag.entry(k).or_insert(0) += v;
    }
}

impl<M: Clone + Send + Sync, O: Send> SimBuilder<M, O> {
    /// Finalizes into the sharded parallel simulator with the given
    /// worker-thread count (forces [`RngMode::PerNode`] — the per-node
    /// stream keying the sharded engine's determinism relies on).
    #[must_use]
    pub fn build_sharded(self, threads: usize) -> ShardedSim<M, O> {
        ShardedSim::from_builder(self, threads)
    }

    /// Finalizes into either engine behind the [`SimMode`] knob.
    #[must_use]
    pub fn build_mode(self, mode: SimMode) -> AnySim<M, O> {
        match mode {
            SimMode::Sequential => AnySim::Sequential(Box::new(self.build())),
            SimMode::Sharded(threads) => AnySim::Sharded(Box::new(self.build_sharded(threads))),
        }
    }
}

/// Either simulation engine behind one harness-facing surface, selected
/// by [`SimMode`]. The sequential arm keeps its default
/// [`RngMode::Global`] stream (existing fixed-seed traces are
/// untouched); the sharded arm runs per-node streams.
pub enum AnySim<M, O> {
    /// The single-threaded golden model.
    Sequential(Box<Simulation<M, O>>),
    /// The sharded conservative-lookahead engine.
    Sharded(Box<ShardedSim<M, O>>),
}

impl<M: Clone + Send + Sync, O: Send> AnySim<M, O> {
    /// Which mode this simulation runs in.
    #[must_use]
    pub fn mode(&self) -> SimMode {
        match self {
            AnySim::Sequential(_) => SimMode::Sequential,
            AnySim::Sharded(s) => SimMode::Sharded(s.threads()),
        }
    }

    /// The sharded engine, when running sharded (for parallelism stats).
    #[must_use]
    pub fn as_sharded(&self) -> Option<&ShardedSim<M, O>> {
        match self {
            AnySim::Sequential(_) => None,
            AnySim::Sharded(s) => Some(s),
        }
    }

    /// Current real time.
    #[must_use]
    pub fn now(&self) -> RealTime {
        match self {
            AnySim::Sequential(s) => s.now(),
            AnySim::Sharded(s) => s.now(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        match self {
            AnySim::Sequential(s) => s.node_count(),
            AnySim::Sharded(s) => s.node_count(),
        }
    }

    /// The clock of `node`, by value (clocks are `Copy`; the sharded arm
    /// keeps its slots behind shard mutexes, so no reference can be
    /// handed out).
    #[must_use]
    pub fn clock(&self, node: NodeId) -> DriftClock {
        match self {
            AnySim::Sequential(s) => *s.clock(node),
            AnySim::Sharded(s) => s.clock_of(node),
        }
    }

    /// Runs until real time `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: RealTime) {
        match self {
            AnySim::Sequential(s) => s.run_until(t),
            AnySim::Sharded(s) => s.run_until(t),
        }
    }

    /// Runs for a real-time span.
    pub fn run_for(&mut self, span: Duration) {
        match self {
            AnySim::Sequential(s) => s.run_for(span),
            AnySim::Sharded(s) => s.run_for(span),
        }
    }

    /// All observations emitted so far.
    #[must_use]
    pub fn observations(&self) -> &[Observation<O>] {
        match self {
            AnySim::Sequential(s) => s.observations(),
            AnySim::Sharded(s) => s.observations(),
        }
    }

    /// Drains the observation log.
    pub fn take_observations(&mut self) -> Vec<Observation<O>> {
        match self {
            AnySim::Sequential(s) => s.take_observations(),
            AnySim::Sharded(s) => s.take_observations(),
        }
    }

    /// Aggregate counters.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        match self {
            AnySim::Sequential(s) => s.metrics(),
            AnySim::Sharded(s) => s.metrics(),
        }
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        match self {
            AnySim::Sequential(s) => s.events_processed(),
            AnySim::Sharded(s) => s.events_processed(),
        }
    }

    /// Marks `node` down until the given real time.
    pub fn set_down_until(&mut self, node: NodeId, until: RealTime) {
        match self {
            AnySim::Sequential(s) => s.set_down_until(node, until),
            AnySim::Sharded(s) => s.set_down_until(node, until),
        }
    }

    /// Blocks the directed link `from → to` until the given real time.
    pub fn block_link(&mut self, from: NodeId, to: NodeId, until: RealTime) {
        match self {
            AnySim::Sequential(s) => s.block_link(from, to, until),
            AnySim::Sharded(s) => s.block_link(from, to, until),
        }
    }

    /// Crashes `node` for `down_for`, scheduling its recovery hook.
    pub fn crash_node(&mut self, node: NodeId, down_for: Duration) {
        match self {
            AnySim::Sequential(s) => s.crash_node(node, down_for),
            AnySim::Sharded(s) => s.crash_node(node, down_for),
        }
    }

    /// Recovers a crashed node immediately.
    pub fn recover_node(&mut self, node: NodeId) {
        match self {
            AnySim::Sequential(s) => s.recover_node(node),
            AnySim::Sharded(s) => s.recover_node(node),
        }
    }

    /// Installs (or heals, with `None`) a network partition.
    pub fn set_partition(&mut self, partition: Option<Partition>) {
        match self {
            AnySim::Sequential(s) => s.set_partition(partition),
            AnySim::Sharded(s) => s.set_partition(partition),
        }
    }

    /// The partition currently in force, if any.
    #[must_use]
    pub fn partition(&self) -> Option<&Partition> {
        match self {
            AnySim::Sequential(s) => s.partition(),
            AnySim::Sharded(s) => s.partition(),
        }
    }

    /// Fault injection: jumps `node`'s clock.
    pub fn skew_clock(&mut self, node: NodeId, jump: Duration, new_rate_ppm: Option<i32>) {
        match self {
            AnySim::Sequential(s) => s.skew_clock(node, jump, new_rate_ppm),
            AnySim::Sharded(s) => s.skew_clock(node, jump, new_rate_ppm),
        }
    }

    /// Fault injection: scales sampled link delays by `num/den`.
    pub fn inflate_delays(&mut self, num: u64, den: u64, until: RealTime) {
        match self {
            AnySim::Sequential(s) => s.inflate_delays(num, den, until),
            AnySim::Sharded(s) => s.inflate_delays(num, den, until),
        }
    }

    /// Fault injection: cancels every pending `token` timer of `node`.
    pub fn cancel_node_timer(&mut self, node: NodeId, token: u64) -> usize {
        match self {
            AnySim::Sequential(s) => s.cancel_node_timer(node, token),
            AnySim::Sharded(s) => s.cancel_node_timer(node, token),
        }
    }

    /// Fault injection: plants a spurious `token` timer `after` from now.
    pub fn plant_timer(&mut self, node: NodeId, after: Duration, token: u64) {
        match self {
            AnySim::Sequential(s) => s.plant_timer(node, after, token),
            AnySim::Sharded(s) => s.plant_timer(node, after, token),
        }
    }

    /// Mutable access to a node's process (harness fault injection).
    pub fn process_mut(&mut self, node: NodeId) -> &mut dyn Process<M, O> {
        match self {
            AnySim::Sequential(s) => s.process_mut(node),
            AnySim::Sharded(s) => s.process_mut(node),
        }
    }

    /// Externally injects a message with a forged sender identity.
    pub fn inject_message(&mut self, at: RealTime, from: NodeId, to: NodeId, msg: M) {
        match self {
            AnySim::Sequential(s) => s.inject_message(at, from, to, msg),
            AnySim::Sharded(s) => s.inject_message(at, from, to, msg),
        }
    }
}
