//! Simulator fault-injection integration tests: storm corruption paths,
//! duplication, taggers and counters.

use rand::RngCore;
use ssbyz_simnet::{Ctx, DriftClock, LinkConfig, Process, SimBuilder, Simulation, StormConfig};
use ssbyz_types::{Duration, NodeId, RealTime};

/// A chatty node: broadcasts `count` numbered messages on start, records
/// everything received.
struct Chatty {
    count: u32,
    received: Vec<u32>,
}

impl Process<u32, u32> for Chatty {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32, u32>) {
        if ctx.me() == NodeId::new(0) {
            for i in 0..self.count {
                ctx.broadcast(i);
            }
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u32>, _from: NodeId, msg: &u32) {
        self.received.push(*msg);
        ctx.observe(*msg);
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32, u32>, _token: u64) {}
}

fn chatty_pair(
    seed: u64,
    storm: Option<StormConfig>,
    with_corruptor: bool,
) -> Simulation<u32, u32> {
    let mut b = SimBuilder::new(seed)
        .link(LinkConfig::uniform(
            Duration::from_micros(10),
            Duration::from_millis(1),
        ))
        .tagger(|m| if *m % 2 == 0 { "even" } else { "odd" });
    if let Some(s) = storm {
        b = b.storm(s);
    }
    if with_corruptor {
        b = b.corruptor(Box::new(|m, rng| {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(m ^ 1)
            }
        }));
    }
    b.node(
        Box::new(Chatty {
            count: 100,
            received: Vec::new(),
        }),
        DriftClock::ideal(),
    )
    .node(
        Box::new(Chatty {
            count: 0,
            received: Vec::new(),
        }),
        DriftClock::ideal(),
    )
    .build()
}

#[test]
fn tagger_counts_by_tag() {
    let mut sim = chatty_pair(1, None, false);
    sim.run_until(RealTime::from_nanos(1_000_000_000));
    let m = sim.metrics();
    // 100 broadcasts × 2 destinations = 200 sends, half even half odd.
    assert_eq!(m.sent, 200);
    assert_eq!(m.per_tag["even"], 100);
    assert_eq!(m.per_tag["odd"], 100);
    assert_eq!(m.delivered, 200);
    assert!(sim.events_processed() >= 200);
}

#[test]
fn storm_corruption_rewrites_messages() {
    let storm = StormConfig {
        until: RealTime::from_nanos(10_000_000_000),
        drop_num: 0,
        drop_den: 1,
        corrupt_num: 1,
        corrupt_den: 1, // corrupt everything
        dup_num: 0,
        dup_den: 1,
        max_delay: Duration::from_millis(1),
        injection_period: None,
    };
    let mut sim = chatty_pair(2, Some(storm), true);
    sim.run_until(RealTime::from_nanos(1_000_000_000));
    let m = sim.metrics();
    assert!(m.corrupted > 100, "most messages rewritten: {m:?}");
    assert!(m.dropped > 0, "the corruptor eats ~1/4: {m:?}");
    assert_eq!(
        u64::from(u32::try_from(sim.observations().len()).unwrap()) + m.dropped + m.swallowed,
        m.delivered + m.dropped,
        "every survivor was delivered"
    );
}

#[test]
fn storm_without_corruptor_degrades_to_loss() {
    let storm = StormConfig {
        until: RealTime::from_nanos(10_000_000_000),
        drop_num: 0,
        drop_den: 1,
        corrupt_num: 1,
        corrupt_den: 1,
        dup_num: 0,
        dup_den: 1,
        max_delay: Duration::from_millis(1),
        injection_period: None,
    };
    let mut sim = chatty_pair(3, Some(storm), false);
    sim.run_until(RealTime::from_nanos(1_000_000_000));
    assert_eq!(sim.metrics().dropped, 200, "no corruptor installed ⇒ loss");
    assert!(sim.observations().is_empty());
}

#[test]
fn storm_duplication_inflates_deliveries() {
    let storm = StormConfig {
        until: RealTime::from_nanos(10_000_000_000),
        drop_num: 0,
        drop_den: 1,
        corrupt_num: 0,
        corrupt_den: 1,
        dup_num: 1,
        dup_den: 1, // duplicate everything
        max_delay: Duration::from_millis(1),
        injection_period: None,
    };
    let mut sim = chatty_pair(4, Some(storm), false);
    sim.run_until(RealTime::from_nanos(1_000_000_000));
    let m = sim.metrics();
    assert_eq!(m.duplicated, 200);
    assert_eq!(m.delivered, 400, "each message delivered twice");
}

#[test]
fn post_storm_traffic_is_clean() {
    // Storm ends at 1ms; the initial burst is storm-exposed, but traffic
    // sent afterwards flows through the normal link.
    struct LateSender;
    impl Process<u32, u32> for LateSender {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32, u32>) {
            ctx.set_timer_after(Duration::from_millis(5), 1);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32, u32>, _from: NodeId, msg: &u32) {
            ctx.observe(*msg);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32, u32>, _token: u64) {
            ctx.broadcast(7);
        }
    }
    let storm = StormConfig {
        until: RealTime::from_nanos(1_000_000),
        drop_num: 1,
        drop_den: 1,
        corrupt_num: 0,
        corrupt_den: 1,
        dup_num: 0,
        dup_den: 1,
        max_delay: Duration::from_millis(1),
        injection_period: None,
    };
    let mut sim: Simulation<u32, u32> = SimBuilder::new(5)
        .storm(storm)
        .link(LinkConfig::fixed(Duration::from_micros(100)))
        .node(Box::new(LateSender), DriftClock::ideal())
        .node(Box::new(LateSender), DriftClock::ideal())
        .build();
    sim.run_until(RealTime::from_nanos(100_000_000));
    // Both nodes broadcast after the storm: 4 deliveries, none dropped.
    assert_eq!(sim.metrics().dropped, 0);
    assert_eq!(sim.observations().len(), 4);
}
