//! Regression tests for stale-`WakeAt` accumulation: rescheduling a
//! node's deadline timer must *cancel* the old scheduler entry (via the
//! wheel's timer handles) rather than leaving garbage to be filtered at
//! pop, and re-requesting an identical `(token, due)` timer must be a
//! no-op. Queue occupancy therefore stays O(nodes) under arbitrarily
//! many reschedules.

use ssbyz_simnet::{Ctx, DriftClock, LinkConfig, Process, SimBuilder, Simulation};
use ssbyz_types::{Duration, LocalTime, NodeId, RealTime};

const T_TICK: u64 = 0;
const T_WAKE: u64 = 1;

/// The engine's `WakeAt` pattern, distilled: a fast periodic tick that on
/// every fire pushes a long deadline timer further into the future. The
/// deadline is rescheduled ~10× before it could ever fire; without
/// explicit cancellation each reschedule would strand a stale entry.
struct Rescheduler {
    period: Duration,
    fires: u64,
}

impl Process<u32, u64> for Rescheduler {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32, u64>) {
        ctx.set_timer_after(self.period, T_TICK);
        ctx.set_timer_after(self.period * 10u64, T_WAKE);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, u32, u64>, _from: NodeId, _msg: &u32) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32, u64>, token: u64) {
        match token {
            T_TICK => {
                self.fires += 1;
                ctx.set_timer_after(self.period, T_TICK);
                // Reschedule: tombstone the pending deadline, arm a new
                // one. This is the paper's `WakeAt` churn — every event
                // pushes the next deadline out by another window.
                ctx.cancel_timer(T_WAKE);
                ctx.set_timer_after(self.period * 10u64, T_WAKE);
            }
            T_WAKE => ctx.observe(self.fires),
            _ => unreachable!("unknown token"),
        }
    }
}

fn build(n: usize) -> Simulation<u32, u64> {
    let mut b = SimBuilder::new(7).link(LinkConfig::fixed(Duration::from_micros(300)));
    for i in 0..n {
        // A mix of drift rates so per-node real due times interleave.
        let clock = match i % 3 {
            0 => DriftClock::ideal(),
            1 => DriftClock::new(RealTime::ZERO, LocalTime::from_nanos(17), 400),
            _ => DriftClock::new(RealTime::ZERO, LocalTime::from_nanos(23_000), -250),
        };
        b = b.node(
            Box::new(Rescheduler {
                period: Duration::from_millis(1),
                fires: 0,
            }),
            clock,
        );
    }
    b.build()
}

#[test]
fn repeated_reschedules_keep_queue_occupancy_bounded_by_nodes() {
    let n = 16;
    let mut sim = build(n);
    let mut max_occupancy = 0;
    // ~2000 ticks per node, each rescheduling the deadline timer.
    for _ in 0..(n as u64 * 2_000) {
        if !sim.step() {
            break;
        }
        max_occupancy = max_occupancy.max(sim.queue_occupancy());
    }
    assert!(
        sim.events_processed() > n as u64 * 1_000,
        "the reschedule churn must actually run (got {} events)",
        sim.events_processed()
    );
    // Exactly two live timers per node (tick + deadline); no stale
    // entries survive a reschedule, at any point in the run.
    assert_eq!(sim.queue_len(), 2 * n);
    assert_eq!(sim.queue_occupancy(), sim.queue_len());
    assert!(
        max_occupancy <= 2 * n,
        "occupancy peaked at {max_occupancy} for {n} nodes — stale entries leaked"
    );
    // The deadline timer was genuinely rescheduled, never fired.
    assert!(sim.observations().is_empty());
}

/// Scheduling an identical `(token, due)` timer twice yields one firing:
/// duplicate `WakeAt` re-emissions collapse instead of double-firing.
struct DoubleSetter;

impl Process<u32, u64> for DoubleSetter {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32, u64>) {
        let due = ctx.now() + Duration::from_millis(2);
        ctx.set_timer_at(due, T_WAKE);
        ctx.set_timer_at(due, T_WAKE); // identical — must be a no-op
        ctx.set_timer_at(due + Duration::from_millis(1), T_WAKE);
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, u32, u64>, _from: NodeId, _msg: &u32) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32, u64>, token: u64) {
        ctx.observe(token);
    }
}

#[test]
fn identical_timer_requests_coalesce_but_distinct_deadlines_all_fire() {
    let mut sim: Simulation<u32, u64> = SimBuilder::new(1)
        .node(Box::new(DoubleSetter), DriftClock::ideal())
        .build();
    sim.run_until(RealTime::from_nanos(10_000_000));
    // Two distinct deadlines → exactly two firings, not three.
    assert_eq!(sim.observations().len(), 2);
    assert_eq!(sim.queue_len(), 0);
}
