//! A/B parity battery for the batched broadcast fan-out.
//!
//! `BroadcastMode::Batched` coalesces a fan-out into one wheel entry per
//! same-due destination batch; `BroadcastMode::PerDestination` is the
//! retained pre-batch route (one entry per destination). The two modes
//! must be *indistinguishable* from inside the simulation: identical
//! observation streams (node, real time, local time, payload — in
//! order), identical metrics, identical RNG consumption — under crashes,
//! link blocks, jittered delays, and full storms (drop / corrupt /
//! duplicate), which exercise every batch-splitting rule:
//!
//! * delay jitter partitions destinations into same-due batches;
//! * link blocks and crashes clear destination bits (at send and at
//!   delivery respectively);
//! * per-destination corruption peels the target out of its batch into a
//!   private copy (`Arc::try_unwrap`-or-clone semantics pinned by the
//!   dedicated regression below);
//! * storm duplicates are singleton pushes that flush open batches first,
//!   preserving the `(due, seq)` interleaving of the per-destination
//!   path.

use proptest::prelude::*;
use ssbyz_simnet::{
    BroadcastMode, Ctx, DriftClock, LinkConfig, Process, SimBuilder, Simulation, StormConfig,
};
use ssbyz_types::{Duration, NodeId, RealTime};

const T_BEAT: u64 = 1;

/// Broadcast-dominated process: every node broadcasts a tagged sequence
/// number on a periodic beat and observes everything it receives. A
/// received broadcast below a threshold is immediately re-broadcast
/// (amplification), so delivery *order* feeds back into traffic — any
/// reordering between the two modes cascades into divergent streams.
struct Beater {
    period: Duration,
    beats: u32,
    fired: u32,
    amplify_below: u64,
}

impl Process<u64, (NodeId, u64)> for Beater {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64, (NodeId, u64)>) {
        ctx.set_timer_after(self.period, T_BEAT);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64, (NodeId, u64)>, from: NodeId, msg: &u64) {
        ctx.observe((from, *msg));
        // One amplification hop only: the re-broadcast leaves the band,
        // so traffic stays bounded at O(n²) per beat.
        if *msg < self.amplify_below {
            ctx.broadcast(msg + 10_000_000);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64, (NodeId, u64)>, token: u64) {
        if token != T_BEAT {
            return;
        }
        let beat = (ctx.me().index() as u64) << 32 | u64::from(self.fired);
        ctx.broadcast(beat + 1_000_000);
        self.fired += 1;
        if self.fired < self.beats {
            ctx.set_timer_after(self.period, T_BEAT);
        }
    }
}

#[derive(Debug, Clone)]
struct Shape {
    n: usize,
    seed: u64,
    /// Fixed delay when 0, else uniform jitter span in µs.
    jitter_us: u64,
    /// Crash the top `crashes` nodes for the first half of the run.
    crashes: usize,
    /// Block node 0 → node 1 for the first half when set.
    block: bool,
    /// Storm drop/corrupt/dup numerators over 8 (0 disables the knob).
    drop_num: u32,
    corrupt_num: u32,
    dup_num: u32,
    /// Re-broadcast amplification threshold.
    amplify: bool,
}

fn build(shape: &Shape, mode: BroadcastMode) -> Simulation<u64, (NodeId, u64)> {
    let delay_min = Duration::from_micros(300);
    let delay_max = delay_min + Duration::from_micros(shape.jitter_us);
    let mut b = SimBuilder::new(shape.seed)
        .link(LinkConfig::uniform(delay_min, delay_max))
        .broadcast_mode(mode);
    if shape.drop_num + shape.corrupt_num + shape.dup_num > 0 {
        b = b
            .storm(StormConfig {
                until: RealTime::from_nanos(6_000_000),
                drop_num: shape.drop_num,
                drop_den: 8,
                corrupt_num: shape.corrupt_num,
                corrupt_den: 8,
                dup_num: shape.dup_num,
                dup_den: 8,
                max_delay: Duration::from_millis(2),
                injection_period: None,
            })
            .corruptor(Box::new(|m, rng| {
                use rand::RngCore;
                // Mix of rewrites and eats, consuming entropy either way.
                let roll = rng.next_u64();
                if roll % 5 == 0 {
                    None
                } else {
                    Some(m ^ (roll % 64))
                }
            }));
    }
    for _ in 0..shape.n {
        b = b.node(
            Box::new(Beater {
                period: Duration::from_millis(1),
                beats: 4,
                fired: 0,
                amplify_below: if shape.amplify { 1_500_000 } else { 0 },
            }),
            DriftClock::ideal(),
        );
    }
    let mut sim = b.build();
    for i in 0..shape.crashes.min(shape.n.saturating_sub(1)) {
        sim.set_down_until(
            NodeId::new((shape.n - 1 - i) as u32),
            RealTime::from_nanos(5_000_000),
        );
    }
    if shape.block && shape.n >= 2 {
        sim.block_link(
            NodeId::new(0),
            NodeId::new(1),
            RealTime::from_nanos(5_000_000),
        );
    }
    sim
}

fn run_parity(shape: &Shape) {
    let mut batched = build(shape, BroadcastMode::Batched);
    let mut per_dest = build(shape, BroadcastMode::PerDestination);
    let horizon = RealTime::from_nanos(12_000_000);
    batched.run_until(horizon);
    per_dest.run_until(horizon);
    assert_eq!(
        batched.observations(),
        per_dest.observations(),
        "observation streams diverged for {shape:?}"
    );
    assert_eq!(
        batched.metrics(),
        per_dest.metrics(),
        "metrics diverged for {shape:?}"
    );
    assert!(
        batched.queue_len() <= per_dest.queue_len(),
        "batching must never enqueue more than per-destination"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Steady-state links (no storm): jittered delays split batches,
    /// crashes clear bits at delivery, blocks clear bits at send — the
    /// observation stream must match the per-destination route exactly.
    #[test]
    fn batched_matches_per_destination_steady_state(
        n in 2usize..12,
        seed in 0u64..5_000,
        jitter_us in 0u64..1_500,
        fixed_delay in any::<bool>(),
        crashes in 0usize..3,
        block in any::<bool>(),
        amplify in any::<bool>(),
    ) {
        let jitter_us = if fixed_delay { 0 } else { jitter_us };
        run_parity(&Shape {
            n, seed, jitter_us, crashes, block,
            drop_num: 0, corrupt_num: 0, dup_num: 0, amplify,
        });
    }

    /// Full storm: drops, per-destination corruption (batch peel) and
    /// duplicates (batch flush) on top of crashes and partitions.
    #[test]
    fn batched_matches_per_destination_under_storm(
        n in 2usize..10,
        seed in 0u64..5_000,
        jitter_us in 0u64..1_500,
        fixed_delay in any::<bool>(),
        crashes in 0usize..2,
        block in any::<bool>(),
        drop_num in 0u32..4,
        corrupt_num in 0u32..5,
        dup_num in 0u32..4,
    ) {
        let jitter_us = if fixed_delay { 0 } else { jitter_us };
        run_parity(&Shape {
            n, seed, jitter_us, crashes, block,
            drop_num, corrupt_num, dup_num, amplify: false,
        });
    }
}

/// Pins the batch-peel semantics of per-destination corruption: when the
/// storm corrupts *some* destinations of one broadcast, each corrupted
/// destination gets its own private mutated copy while every other
/// destination's copy stays byte-identical to the original — mutating
/// one copy of a batched broadcast must never leak into (or suppress)
/// the rest of the batch. This is the `Arc::try_unwrap`-or-clone rule:
/// the batch shares the payload, so the corruptor always works on a
/// fresh deep clone.
#[test]
fn corruption_peels_one_destination_without_touching_the_batch() {
    const N: usize = 16;
    const ORIGINAL: u64 = 100;
    const STAMP: u64 = 1_000_000;
    struct OneShot;
    impl Process<u64, (NodeId, u64)> for OneShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64, (NodeId, u64)>) {
            if ctx.me() == NodeId::new(0) {
                ctx.broadcast(ORIGINAL);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64, (NodeId, u64)>, from: NodeId, msg: &u64) {
            ctx.observe((from, *msg));
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64, (NodeId, u64)>, _token: u64) {}
    }
    let mut b = SimBuilder::new(7)
        .link(LinkConfig::fixed(Duration::from_millis(1)))
        .storm(StormConfig {
            until: RealTime::from_nanos(10_000_000),
            drop_num: 0,
            drop_den: 1,
            corrupt_num: 1,
            corrupt_den: 2, // roughly half the destinations get peeled
            dup_num: 0,
            dup_den: 1,
            max_delay: Duration::from_millis(1),
            injection_period: None,
        })
        .corruptor(Box::new(|m, _| Some(m + STAMP)));
    for _ in 0..N {
        b = b.node(Box::new(OneShot), DriftClock::ideal());
    }
    let mut sim = b.build();
    sim.run_until(RealTime::from_nanos(20_000_000));

    let obs = sim.observations();
    assert_eq!(obs.len(), N, "every destination received exactly one copy");
    let pristine = obs.iter().filter(|o| o.event.1 == ORIGINAL).count();
    let corrupted = obs.iter().filter(|o| o.event.1 == ORIGINAL + STAMP).count();
    assert_eq!(
        pristine + corrupted,
        N,
        "copies are either pristine or exactly the corruptor's rewrite: {obs:?}"
    );
    assert_eq!(
        corrupted as u64,
        sim.metrics().corrupted,
        "each peeled destination counts once"
    );
    assert!(
        pristine >= 2 && corrupted >= 2,
        "seed must exercise both paths (got {pristine} pristine / {corrupted} corrupted)"
    );
    // And the A/B check on exactly this scenario.
    let mut b2 = SimBuilder::new(7)
        .link(LinkConfig::fixed(Duration::from_millis(1)))
        .broadcast_mode(BroadcastMode::PerDestination)
        .storm(StormConfig {
            until: RealTime::from_nanos(10_000_000),
            drop_num: 0,
            drop_den: 1,
            corrupt_num: 1,
            corrupt_den: 2,
            dup_num: 0,
            dup_den: 1,
            max_delay: Duration::from_millis(1),
            injection_period: None,
        })
        .corruptor(Box::new(|m, _| Some(m + STAMP)));
    for _ in 0..N {
        b2 = b2.node(Box::new(OneShot), DriftClock::ideal());
    }
    let mut reference = b2.build();
    reference.run_until(RealTime::from_nanos(20_000_000));
    assert_eq!(sim.observations(), reference.observations());
    assert_eq!(sim.metrics(), reference.metrics());
}

/// The headline collapse: an all-broadcast round under a deterministic
/// link delay occupies O(n) wheel entries batched versus O(n²)
/// per-destination. `run_until` past start but before the delivery due
/// time leaves every fan-out enqueued and nothing popped.
#[test]
fn all_broadcast_round_queue_occupancy_drops_n_fold() {
    const N: usize = 32;
    struct Shout;
    impl Process<u64, u64> for Shout {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64, u64>) {
            ctx.broadcast(ctx.me().index() as u64);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64, u64>, _from: NodeId, msg: &u64) {
            ctx.observe(*msg);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64, u64>, _token: u64) {}
    }
    let build = |mode| {
        let mut b = SimBuilder::new(3)
            .link(LinkConfig::fixed(Duration::from_millis(1)))
            .broadcast_mode(mode);
        for _ in 0..N {
            b = b.node(Box::new(Shout), DriftClock::ideal());
        }
        b.build()
    };
    let mut batched: Simulation<u64, u64> = build(BroadcastMode::Batched);
    let mut per_dest: Simulation<u64, u64> = build(BroadcastMode::PerDestination);
    // Start fires every node's broadcast; deliveries are due at +1ms, so
    // running to +0.5ms only enqueues.
    batched.run_until(RealTime::from_nanos(500_000));
    per_dest.run_until(RealTime::from_nanos(500_000));
    assert_eq!(
        batched.queue_len(),
        N,
        "one wheel entry per broadcast (fixed delay ⇒ one batch)"
    );
    assert_eq!(
        per_dest.queue_len(),
        N * N,
        "pre-batch: one per destination"
    );
    assert_eq!(batched.queue_occupancy(), batched.queue_len());
    // Drain both: identical deliveries despite the n× occupancy gap.
    batched.run_until(RealTime::from_nanos(5_000_000));
    per_dest.run_until(RealTime::from_nanos(5_000_000));
    assert_eq!(batched.observations(), per_dest.observations());
    assert_eq!(batched.metrics().delivered, (N * N) as u64);
}

/// Crashed destinations are excluded *at delivery* via the bitmap walk
/// (swallowed), partitioned ones *at send* (bit never set) — counts and
/// streams equal to the reference route.
#[test]
fn crashed_and_partitioned_destinations_are_excluded_from_batches() {
    let shape = Shape {
        n: 8,
        seed: 11,
        jitter_us: 0,
        crashes: 2,
        block: true,
        drop_num: 0,
        corrupt_num: 0,
        dup_num: 0,
        amplify: false,
    };
    let mut batched = build(&shape, BroadcastMode::Batched);
    batched.run_until(RealTime::from_nanos(12_000_000));
    assert!(
        batched.metrics().swallowed > 0,
        "crashes swallow deliveries"
    );
    assert!(
        batched.metrics().blocked > 0,
        "partition suppresses at send"
    );
    run_parity(&shape);
}
