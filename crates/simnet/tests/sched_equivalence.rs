//! Golden-equivalence property tests for the scheduler: the hierarchical
//! [`TimerWheel`] must produce **bit-identical** pop streams to the
//! retained `BinaryHeap` [`ReferenceQueue`] over random insert / cancel /
//! advance interleavings — including far-future due times that land in
//! the overflow level and cursor wrap-around across level frames. This is
//! what makes the wheel a drop-in replacement: simulation traces under it
//! are event-for-event identical to the heap scheduler it replaced.

use proptest::prelude::*;
use ssbyz_simnet::sched::reference::ReferenceQueue;
use ssbyz_simnet::sched::{EventQueue, Expired, TimerHandle, TimerWheel};

/// Both queues driven in lockstep; every observable must agree.
struct Pair {
    wheel: TimerWheel<u32>,
    heap: ReferenceQueue<u32>,
    /// Parallel handles for the same logical entry (incl. consumed ones,
    /// to exercise stale-handle cancels).
    handles: Vec<(TimerHandle, TimerHandle)>,
}

impl Pair {
    fn new(tick_shift: u32) -> Self {
        Pair {
            wheel: TimerWheel::with_tick_shift(tick_shift),
            heap: ReferenceQueue::new(),
            handles: Vec::new(),
        }
    }

    fn insert(&mut self, due: u64, payload: u32) {
        let hw = self.wheel.insert(due, payload);
        let hh = self.heap.insert(due, payload);
        self.handles.push((hw, hh));
        self.check();
    }

    fn cancel(&mut self, pick: usize) {
        if self.handles.is_empty() {
            return;
        }
        let (hw, hh) = self.handles[pick % self.handles.len()];
        let cw = self.wheel.cancel(hw);
        let ch = self.heap.cancel(hh);
        assert_eq!(cw, ch, "cancel outcome diverged for handle {pick}");
        self.check();
    }

    fn pop(&mut self) -> Option<Expired<u32>> {
        let w = self.wheel.pop();
        let h = self.heap.pop();
        assert_eq!(w, h, "pop stream diverged");
        self.check();
        w
    }

    fn check(&mut self) {
        assert_eq!(self.wheel.len(), self.heap.len(), "live count diverged");
        assert_eq!(self.wheel.peek_due(), self.heap.peek_due(), "head diverged");
        assert_eq!(self.wheel.is_empty(), self.heap.is_empty());
        assert_eq!(
            self.wheel.occupancy(),
            self.wheel.len(),
            "the wheel must never carry cancelled garbage"
        );
    }

    fn drain(&mut self) {
        while self.pop().is_some() {}
        assert_eq!(self.wheel.len(), 0);
    }
}

/// Spreads a raw delta over wildly different magnitudes so cases hit the
/// near buffer, every wheel level, and the overflow map: the low 2 bits
/// select a band, the rest scale within it.
fn shape_delta(raw: u64) -> u64 {
    match raw & 3 {
        0 => (raw >> 2) % 1_000,                      // same-tick / near
        1 => (raw >> 2) % 5_000_000,                  // low levels
        2 => (raw >> 2) % (1 << 40),                  // high levels
        _ => (1 << 50) + (raw >> 2) % (u64::MAX / 4), // overflow territory
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// The main interleaving property: random inserts (all magnitudes),
    /// cancels (live, repeated and stale), and batched pops that advance
    /// simulated time.
    #[test]
    fn wheel_matches_heap_on_random_interleavings(
        tick_shift in 0u32..18,
        ops in prop::collection::vec((0u32..10, any::<u64>(), 0usize..64), 1..200),
    ) {
        let mut pair = Pair::new(tick_shift);
        let mut now = 0u64;
        let mut payload = 0u32;
        for (op, raw, pick) in ops {
            match op {
                // Insert relative to the last popped time, like a
                // dispatch loop scheduling follow-up events.
                0..=5 => {
                    payload += 1;
                    pair.insert(now.saturating_add(shape_delta(raw)), payload);
                }
                // Cancel some handle — possibly one already consumed.
                6 | 7 => pair.cancel(pick),
                // Advance: pop a small batch, moving `now` forward.
                _ => {
                    for _ in 0..(pick % 8 + 1) {
                        match pair.pop() {
                            Some(e) => now = now.max(e.due),
                            None => break,
                        }
                    }
                }
            }
        }
        pair.drain();
    }

    /// Dense same-due bursts: FIFO within a due time must match exactly
    /// (this is where a heap's (due, seq) tie-break matters most).
    #[test]
    fn wheel_matches_heap_on_fifo_bursts(
        dues in prop::collection::vec(0u64..50_000, 2..120),
        tick_shift in 4u32..16,
    ) {
        let mut pair = Pair::new(tick_shift);
        for (i, due) in dues.iter().enumerate() {
            // Duplicate each due: same-key entries must pop in insertion
            // order on both sides.
            pair.insert(*due, i as u32 * 2);
            pair.insert(*due, i as u32 * 2 + 1);
        }
        pair.drain();
    }

    /// Far-future coverage: everything starts in the overflow map (or the
    /// top level) and must migrate down through every level as pops
    /// advance the cursor across frame wrap-arounds.
    #[test]
    fn wheel_matches_heap_across_overflow_and_wraparound(
        deltas in prop::collection::vec((any::<u64>(), 0u32..4), 2..80),
    ) {
        // tick_shift 0 ⇒ horizon 2^36 ns: huge dues overflow readily and
        // small steps cross level-frame boundaries (cursor wrap) often.
        let mut pair = Pair::new(0);
        let mut payload = 0u32;
        let mut now = 0u64;
        for (raw, kind) in deltas {
            payload += 1;
            let due = match kind {
                // Cluster just below and above one frame boundary.
                0 => (1u64 << 36) - 16 + raw % 32,
                // Multi-frame strides.
                1 => now.saturating_add((raw % 8) << 36),
                // Deep overflow.
                2 => (1u64 << 52).saturating_add(raw % (1 << 53)),
                // Near the cursor.
                _ => now.saturating_add(raw % 1_024),
            };
            pair.insert(due, payload);
            if payload.is_multiple_of(3) {
                if let Some(e) = pair.pop() {
                    now = now.max(e.due);
                }
            }
        }
        pair.drain();
    }
}

/// The stale-entry regression the wheel exists to fix, at the queue
/// level: a reschedule-heavy workload (cancel + reinsert, never popping)
/// keeps wheel occupancy exactly at the live-timer count, while the old
/// heap's lazy cancellation accumulates a tombstone per reschedule.
#[test]
fn rescheduling_leaves_no_garbage_in_the_wheel() {
    const NODES: usize = 32;
    const ROUNDS: usize = 200;
    let mut wheel: TimerWheel<u32> = TimerWheel::with_tick_shift(10);
    let mut heap: ReferenceQueue<u32> = ReferenceQueue::new();
    let mut handles: Vec<(TimerHandle, TimerHandle)> = (0..NODES)
        .map(|i| {
            let due = 1_000_000 + i as u64;
            (wheel.insert(due, i as u32), heap.insert(due, i as u32))
        })
        .collect();
    for round in 1..=ROUNDS {
        for (i, hs) in handles.iter_mut().enumerate() {
            assert!(wheel.cancel(hs.0));
            assert!(heap.cancel(hs.1));
            let due = 1_000_000 + (round * 1_000 + i) as u64;
            *hs = (wheel.insert(due, i as u32), heap.insert(due, i as u32));
        }
        assert_eq!(
            wheel.occupancy(),
            NODES,
            "wheel occupancy must stay O(nodes) after {round} reschedule rounds"
        );
    }
    assert_eq!(wheel.len(), NODES);
    // The heap, by contrast, still physically holds every tombstone.
    assert_eq!(heap.len(), NODES);
    assert_eq!(heap.occupancy(), NODES * (ROUNDS + 1));
}

/// A batched-broadcast-shaped slab payload: the simulator's fan-out now
/// schedules one entry per same-due destination batch, so wheel entries
/// carry a destination bitmap next to the shared payload instead of a
/// bare id. The scheduler is payload-generic — this pins that the batch
/// shape (a wider, non-`Copy` payload with interior structure) changes
/// neither pop order nor cancellation behaviour, wheel vs reference
/// heap, bit for bit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BatchEntry {
    from: u8,
    /// Two bitmap words — enough for 128 destinations.
    dests: [u64; 2],
    payload_tag: u64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random insert/cancel/advance interleavings over batch-shaped
    /// entries: the `(due, seq, payload)` pop streams must be identical.
    #[test]
    fn wheel_matches_heap_with_batch_entries(
        tick_shift in 4u32..16,
        ops in prop::collection::vec((0u32..8, any::<u64>(), 0usize..32), 1..150),
    ) {
        let mut wheel: TimerWheel<BatchEntry> = TimerWheel::with_tick_shift(tick_shift);
        let mut heap: ReferenceQueue<BatchEntry> = ReferenceQueue::new();
        let mut handles: Vec<(TimerHandle, TimerHandle)> = Vec::new();
        let mut now = 0u64;
        let mut tag = 0u64;
        for (op, raw, pick) in ops {
            match op {
                0..=4 => {
                    tag += 1;
                    let e = BatchEntry {
                        from: (raw % 64) as u8,
                        dests: [raw.rotate_left(17), raw.rotate_right(9)],
                        payload_tag: tag,
                    };
                    let due = now.saturating_add(raw % 40_000);
                    let hw = wheel.insert(due, e.clone());
                    let hh = heap.insert(due, e);
                    handles.push((hw, hh));
                }
                5 | 6 => {
                    if !handles.is_empty() {
                        let (hw, hh) = handles[pick % handles.len()];
                        assert_eq!(wheel.cancel(hw), heap.cancel(hh));
                    }
                }
                _ => {
                    for _ in 0..(pick % 6 + 1) {
                        let w = wheel.pop();
                        let h = heap.pop();
                        assert_eq!(w, h, "batch-entry pop stream diverged");
                        match w {
                            Some(e) => now = now.max(e.due),
                            None => break,
                        }
                    }
                }
            }
            assert_eq!(wheel.len(), heap.len());
            assert_eq!(wheel.peek_due(), heap.peek_due());
        }
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }
}
