//! A/B battery for the sharded conservative-lookahead simulator.
//!
//! Two tiers, mirroring the wave-coalescing precedent:
//!
//! 1. **Thread-count invariance (bit-identical).** `Sharded(k)` for any
//!    `k` must produce the *exact same* observation log and metrics as
//!    `Sharded(1)` from the same seed: windows are global, deliveries
//!    merge at the `(due, sender, seq)` barrier order, RNG streams are
//!    per-node, and global effects always defer to the barrier — nothing
//!    depends on the shard count.
//! 2. **Sequential parity (multiset).** Versus the sequential golden
//!    model in `RngMode::PerNode`, the sharded engine preserves the
//!    observation multiset per `(real time, node)` and every metric
//!    exactly; only same-instant orderings *across* nodes may differ
//!    (the barrier orders equal-due arrivals by sender id rather than by
//!    global send sequence).
//!
//! Shapes cover jittered and fixed delays, crashes, link blocks, full
//! storms (drop/corrupt/duplicate/inject — run on the sequential engine
//! until the storm ends, then decomposed), per-node handler RNG draws,
//! and mid-run harness faults applied between `run_until` calls.

use proptest::prelude::*;
use ssbyz_simnet::{
    Ctx, DriftClock, LinkConfig, Metrics, Observation, Partition, Process, RngMode, ShardedSim,
    SimBuilder, Simulation, StormConfig,
};
use ssbyz_types::{Duration, NodeId, RealTime};

const T_BEAT: u64 = 1;

type Obs = (u32, u64);

/// Same broadcast-amplification process as the fan-out battery, plus an
/// optional per-node RNG draw in the timer handler (the one place the
/// determinism contract allows draws) so the per-node stream keying is
/// exercised, not just the routing draws.
struct Beater {
    period: Duration,
    beats: u32,
    fired: u32,
    amplify_below: u64,
    use_rng: bool,
}

impl Process<u64, Obs> for Beater {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64, Obs>) {
        ctx.set_timer_after(self.period, T_BEAT);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64, Obs>, from: NodeId, msg: &u64) {
        ctx.observe((from.index() as u32, *msg));
        if *msg < self.amplify_below {
            ctx.broadcast(msg + 10_000_000);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64, Obs>, token: u64) {
        if token != T_BEAT {
            return;
        }
        let mut beat = ((ctx.me().index() as u64) << 32 | u64::from(self.fired)) + 1_000_000;
        if self.use_rng {
            beat ^= ctx.rand_below(16);
        }
        ctx.broadcast(beat);
        self.fired += 1;
        if self.fired < self.beats {
            ctx.set_timer_after(self.period, T_BEAT);
        }
    }
}

#[derive(Debug, Clone)]
struct Shape {
    n: usize,
    seed: u64,
    jitter_us: u64,
    crashes: usize,
    block: bool,
    storm: bool,
    use_rng: bool,
}

fn builder(shape: &Shape) -> SimBuilder<u64, Obs> {
    let delay_min = Duration::from_micros(300);
    let delay_max = delay_min + Duration::from_micros(shape.jitter_us);
    let mut b = SimBuilder::new(shape.seed).link(LinkConfig::uniform(delay_min, delay_max));
    if shape.storm {
        b = b
            .storm(StormConfig {
                until: RealTime::from_nanos(4_000_000),
                drop_num: 1,
                drop_den: 4,
                corrupt_num: 1,
                corrupt_den: 8,
                dup_num: 1,
                dup_den: 8,
                max_delay: Duration::from_millis(2),
                injection_period: Some(Duration::from_micros(700)),
            })
            .corruptor(Box::new(|m, rng| {
                use rand::RngCore;
                let roll = rng.next_u64();
                if roll % 5 == 0 {
                    None
                } else {
                    Some(m ^ (roll % 64))
                }
            }))
            .injector(Box::new(|rng, n| {
                use rand::RngCore;
                let from = NodeId::new((rng.next_u64() % n as u64) as u32);
                let to = NodeId::new((rng.next_u64() % n as u64) as u32);
                (from, to, 42_000_000 + rng.next_u64() % 100)
            }));
    }
    for _ in 0..shape.n {
        b = b.node(
            Box::new(Beater {
                period: Duration::from_millis(1),
                beats: 4,
                fired: 0,
                amplify_below: 1_500_000,
                use_rng: shape.use_rng,
            }),
            DriftClock::ideal(),
        );
    }
    b
}

fn apply_static_faults(sharded: &mut ShardedSim<u64, Obs>, shape: &Shape) {
    for i in 0..shape.crashes.min(shape.n.saturating_sub(1)) {
        sharded.set_down_until(
            NodeId::new((shape.n - 1 - i) as u32),
            RealTime::from_nanos(5_000_000),
        );
    }
    if shape.block && shape.n >= 2 {
        sharded.block_link(
            NodeId::new(0),
            NodeId::new(1),
            RealTime::from_nanos(5_000_000),
        );
    }
}

fn run_sharded(shape: &Shape, threads: usize) -> (Vec<Observation<Obs>>, Metrics) {
    let mut sim = builder(shape).build_sharded(threads);
    apply_static_faults(&mut sim, shape);
    sim.run_until(RealTime::from_nanos(12_000_000));
    (sim.observations().to_vec(), sim.metrics().clone())
}

fn run_sequential(shape: &Shape) -> (Vec<Observation<Obs>>, Metrics) {
    let mut sim: Simulation<u64, Obs> = builder(shape).rng_mode(RngMode::PerNode).build();
    for i in 0..shape.crashes.min(shape.n.saturating_sub(1)) {
        sim.set_down_until(
            NodeId::new((shape.n - 1 - i) as u32),
            RealTime::from_nanos(5_000_000),
        );
    }
    if shape.block && shape.n >= 2 {
        sim.block_link(
            NodeId::new(0),
            NodeId::new(1),
            RealTime::from_nanos(5_000_000),
        );
    }
    sim.run_until(RealTime::from_nanos(12_000_000));
    (sim.observations().to_vec(), sim.metrics().clone())
}

/// Canonical multiset order: `(real, node, payload)`.
fn canon(mut obs: Vec<Observation<Obs>>) -> Vec<Observation<Obs>> {
    obs.sort_by_key(|o| (o.real.as_nanos(), o.node.index(), o.event));
    obs
}

fn check_thread_invariance(shape: &Shape) {
    let (obs1, met1) = run_sharded(shape, 1);
    for threads in [2, 4, 8] {
        let (obs_k, met_k) = run_sharded(shape, threads);
        assert_eq!(
            obs1, obs_k,
            "observation log diverged at threads={threads} for {shape:?}"
        );
        assert_eq!(
            met1, met_k,
            "metrics diverged at threads={threads} for {shape:?}"
        );
    }
}

fn check_sequential_parity(shape: &Shape) {
    let (obs_seq, met_seq) = run_sequential(shape);
    let (obs_sh, met_sh) = run_sharded(shape, 4);
    assert_eq!(
        canon(obs_seq),
        canon(obs_sh),
        "observation multiset diverged from sequential for {shape:?}"
    );
    assert_eq!(
        met_seq, met_sh,
        "metrics diverged from sequential for {shape:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tier 1: `Sharded(k)` is bit-identical to `Sharded(1)` — full
    /// observation log and metrics — across jitter, crashes, blocks,
    /// handler draws, and storms with injection.
    #[test]
    fn sharded_is_thread_count_invariant(
        n in 2usize..12,
        seed in 0u64..5_000,
        jitter_us in 0u64..1_500,
        fixed_delay in any::<bool>(),
        crashes in 0usize..3,
        block in any::<bool>(),
        storm in any::<bool>(),
        use_rng in any::<bool>(),
    ) {
        let jitter_us = if fixed_delay { 0 } else { jitter_us };
        check_thread_invariance(&Shape { n, seed, jitter_us, crashes, block, storm, use_rng });
    }

    /// Tier 2: versus the sequential golden model (per-node streams),
    /// the `(real, node, payload)` observation multiset and every metric
    /// match exactly.
    #[test]
    fn sharded_matches_sequential_golden_model(
        n in 2usize..12,
        seed in 0u64..5_000,
        jitter_us in 0u64..1_500,
        fixed_delay in any::<bool>(),
        crashes in 0usize..3,
        block in any::<bool>(),
        storm in any::<bool>(),
        use_rng in any::<bool>(),
    ) {
        let jitter_us = if fixed_delay { 0 } else { jitter_us };
        check_sequential_parity(&Shape { n, seed, jitter_us, crashes, block, storm, use_rng });
    }
}

/// Mid-run harness faults between `run_until` calls — crash/recover,
/// partition install/heal, delay deflation (which shrinks the lookahead
/// window), planted and cancelled timers — stay thread-count invariant
/// and match the sequential engine as a multiset.
#[test]
fn mid_run_faults_are_thread_count_invariant() {
    let shape = Shape {
        n: 9,
        seed: 77,
        jitter_us: 400,
        crashes: 0,
        block: false,
        storm: false,
        use_rng: true,
    };
    #[allow(clippy::too_many_arguments)]
    fn drive<S>(
        mut sim: S,
        run: impl Fn(&mut S, u64),
        crash: impl Fn(&mut S, u32, u64),
        recover: impl Fn(&mut S, u32),
        partition: impl Fn(&mut S, Option<Partition>),
        inflate: impl Fn(&mut S, u64, u64, u64),
        plant: impl Fn(&mut S, u32, u64, u64),
        cancel: impl Fn(&mut S, u32, u64),
    ) -> S {
        run(&mut sim, 2_000_000);
        crash(&mut sim, 2, 1_500_000);
        partition(
            &mut sim,
            Some(Partition::split(
                9,
                &[
                    NodeId::new(0),
                    NodeId::new(1),
                    NodeId::new(2),
                    NodeId::new(3),
                ],
            )),
        );
        run(&mut sim, 4_000_000);
        partition(&mut sim, None);
        inflate(&mut sim, 1, 2, 7_000_000);
        plant(&mut sim, 5, 300_000, T_BEAT);
        cancel(&mut sim, 6, T_BEAT);
        run(&mut sim, 8_000_000);
        recover(&mut sim, 2);
        run(&mut sim, 14_000_000);
        sim
    }

    let sharded = |threads: usize| {
        let sim = builder(&shape).build_sharded(threads);
        let sim = drive(
            sim,
            |s, t| s.run_until(RealTime::from_nanos(t)),
            |s, n, d| s.crash_node(NodeId::new(n), Duration::from_nanos(d)),
            |s, n| s.recover_node(NodeId::new(n)),
            |s, p| s.set_partition(p),
            |s, num, den, until| s.inflate_delays(num, den, RealTime::from_nanos(until)),
            |s, n, after, tok| s.plant_timer(NodeId::new(n), Duration::from_nanos(after), tok),
            |s, n, tok| {
                s.cancel_node_timer(NodeId::new(n), tok);
            },
        );
        (sim.observations().to_vec(), sim.metrics().clone())
    };
    let (obs1, met1) = sharded(1);
    for threads in [2, 4, 8] {
        let (obs_k, met_k) = sharded(threads);
        assert_eq!(obs1, obs_k, "mid-run faults diverged at threads={threads}");
        assert_eq!(met1, met_k);
    }

    let seq = {
        let sim: Simulation<u64, Obs> = builder(&shape).rng_mode(RngMode::PerNode).build();
        let sim = drive(
            sim,
            |s, t| s.run_until(RealTime::from_nanos(t)),
            |s, n, d| s.crash_node(NodeId::new(n), Duration::from_nanos(d)),
            |s, n| s.recover_node(NodeId::new(n)),
            |s, p| s.set_partition(p),
            |s, num, den, until| s.inflate_delays(num, den, RealTime::from_nanos(until)),
            |s, n, after, tok| s.plant_timer(NodeId::new(n), Duration::from_nanos(after), tok),
            |s, n, tok| {
                s.cancel_node_timer(NodeId::new(n), tok);
            },
        );
        (sim.observations().to_vec(), sim.metrics().clone())
    };
    assert_eq!(
        canon(seq.0),
        canon(obs1),
        "mid-run faults diverged from sequential"
    );
    assert_eq!(seq.1, met1);
}

/// Fixed delays, no storm, no handler draws: nothing ever draws, so the
/// sequential default (`RngMode::Global`) and the sharded engine must
/// agree too — the basis for scenario-level parity in the harness.
#[test]
fn draw_free_scenarios_match_the_global_stream_default() {
    let shape = Shape {
        n: 8,
        seed: 3,
        jitter_us: 0,
        crashes: 1,
        block: true,
        storm: false,
        use_rng: false,
    };
    let mut seq: Simulation<u64, Obs> = builder(&shape).build(); // default Global
    for i in 0..1 {
        seq.set_down_until(
            NodeId::new((shape.n - 1 - i) as u32),
            RealTime::from_nanos(5_000_000),
        );
    }
    seq.block_link(
        NodeId::new(0),
        NodeId::new(1),
        RealTime::from_nanos(5_000_000),
    );
    seq.run_until(RealTime::from_nanos(12_000_000));
    let (obs_sh, met_sh) = run_sharded(&shape, 4);
    assert_eq!(canon(seq.observations().to_vec()), canon(obs_sh));
    assert_eq!(seq.metrics(), &met_sh);
}

/// The parallelism accounting is populated and self-consistent.
#[test]
fn critical_path_accounting_is_populated() {
    let shape = Shape {
        n: 16,
        seed: 9,
        jitter_us: 0,
        crashes: 0,
        block: false,
        storm: false,
        use_rng: false,
    };
    let mut sim = builder(&shape).build_sharded(4);
    sim.run_until(RealTime::from_nanos(12_000_000));
    assert!(sim.windows_run() > 0);
    assert!(sim.windowed_events() > 0);
    assert!(sim.critical_events() > 0);
    assert!(sim.critical_events() <= sim.windowed_events());
    let p = sim.parallelism();
    assert!(p >= 1.0, "parallelism bound below 1: {p}");
}
