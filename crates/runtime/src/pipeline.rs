//! Threaded wall-clock execution of the slot pipeline: a
//! [`PipelineCluster`] serves a continuous stream of client values, one
//! [`SlotPipeline`] per node thread, commits applied in slot order to
//! each node's replicated decision log. The delay router is shared with
//! the one-shot [`crate::Cluster`] — same wheel, same per-destination
//! jitter model — instantiated over [`SlotMsg`] payloads.
//!
//! ```no_run
//! use ssbyz_core::{Params, PipelineConfig};
//! use ssbyz_runtime::{PipelineCluster, RuntimeConfig};
//! use ssbyz_types::{Duration, NodeId};
//!
//! let params = Params::from_d(4, 1, Duration::from_millis(20), 0)?;
//! let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params);
//! let cluster: PipelineCluster<u64> =
//!     PipelineCluster::spawn(params, pipe_cfg, RuntimeConfig::default());
//! for v in 0..8u64 {
//!     cluster.submit(v)?;
//! }
//! cluster.wait_for_commits(4 * 8, std::time::Duration::from_secs(10));
//! cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use ssbyz_core::{LocalTime, Params, PipeEvent, PipeOutput, PipelineConfig, SlotMsg, SlotPipeline};
use ssbyz_types::{NodeId, Value};

use crate::{router_loop, RouterDest, RouterMsg, RuntimeConfig};

/// Commands accepted by a pipeline node thread.
enum PipeCmd<V> {
    Deliver { from: NodeId, msg: Arc<SlotMsg<V>> },
    Submit(V),
    Shutdown,
}

/// One slot commit observed on the cluster: `node` applied `value` at
/// `slot` in its replicated log, `elapsed` after cluster start.
#[derive(Debug, Clone)]
pub struct CommitRecord<V> {
    /// The committing node.
    pub node: NodeId,
    /// The slot number (per-node logs are gap-free and in slot order).
    pub slot: u64,
    /// The decided value (shared wire handle, no deep copy).
    pub value: Arc<V>,
    /// Wall-clock time since cluster start.
    pub elapsed: std::time::Duration,
}

/// A live cluster of slot-pipeline threads serving a value stream.
pub struct PipelineCluster<V: Value> {
    cmd_txs: Vec<Sender<PipeCmd<V>>>,
    router_tx: Sender<RouterMsg<SlotMsg<V>>>,
    commits: Arc<Mutex<Vec<CommitRecord<V>>>>,
    threads: Vec<JoinHandle<()>>,
    proposer: NodeId,
    n: usize,
}

impl<V: Value> PipelineCluster<V> {
    /// Spawns `params.n()` pipeline threads plus the delay router.
    /// `pipe_cfg` configures every node's multiplexer (same window,
    /// retry and catch-up policy cluster-wide).
    #[must_use]
    pub fn spawn(params: Params, pipe_cfg: PipelineConfig, cfg: RuntimeConfig) -> Self {
        let n = params.n();
        let proposer = pipe_cfg.proposer;
        let start = Instant::now();
        let commits: Arc<Mutex<Vec<CommitRecord<V>>>> = Arc::new(Mutex::new(Vec::new()));
        let (router_tx, router_rx) = unbounded::<RouterMsg<SlotMsg<V>>>();
        let mut cmd_txs = Vec::with_capacity(n);
        let mut cmd_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<PipeCmd<V>>(4096);
            cmd_txs.push(tx);
            cmd_rxs.push(rx);
        }
        let mut threads = Vec::new();
        {
            let cmd_txs = cmd_txs.clone();
            threads.push(std::thread::spawn(move || {
                router_loop(router_rx, cmd_txs, cfg, |from, msg| PipeCmd::Deliver {
                    from,
                    msg,
                });
            }));
        }
        for (i, rx) in cmd_rxs.into_iter().enumerate() {
            let id = NodeId::new(i as u32);
            let router_tx = router_tx.clone();
            let commits = Arc::clone(&commits);
            let pipe_cfg_i = pipe_cfg.clone();
            let cfg_i = cfg;
            threads.push(std::thread::spawn(move || {
                pipe_node_loop(id, params, pipe_cfg_i, cfg_i, rx, router_tx, commits, start);
            }));
        }
        PipelineCluster {
            cmd_txs,
            router_tx,
            commits,
            threads,
            proposer,
            n,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Enqueues `value` on the proposer's stream; it will be batched
    /// into the next open slot the window allows.
    ///
    /// # Errors
    ///
    /// Fails if the proposer thread has shut down.
    pub fn submit(&self, value: V) -> Result<(), &'static str> {
        self.cmd_txs[self.proposer.index()]
            .send(PipeCmd::Submit(value))
            .map_err(|_| "proposer thread is gone")
    }

    /// Injects a raw slot message with a forged sender (adversary
    /// testing; delivered immediately, no link delay).
    ///
    /// # Errors
    ///
    /// Fails if the router has shut down.
    pub fn inject(&self, from: NodeId, to: NodeId, msg: SlotMsg<V>) -> Result<(), &'static str> {
        self.router_tx
            .send(RouterMsg {
                due: Instant::now(),
                from,
                dest: RouterDest::One(to),
                msg: Arc::new(msg),
            })
            .map_err(|_| "router is gone")
    }

    /// Snapshot of all commit records so far, in observation order.
    #[must_use]
    pub fn commits(&self) -> Vec<CommitRecord<V>> {
        self.commits.lock().clone()
    }

    /// Per-node committed logs, each in slot order.
    #[must_use]
    pub fn committed_logs(&self) -> Vec<Vec<(u64, Arc<V>)>> {
        let mut logs: Vec<Vec<(u64, Arc<V>)>> = vec![Vec::new(); self.n];
        for c in self.commits() {
            logs[c.node.index()].push((c.slot, c.value));
        }
        logs
    }

    /// Waits (up to `timeout`) until `count` commit records exist
    /// across the cluster.
    #[must_use]
    pub fn wait_for_commits(&self, count: usize, timeout: std::time::Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.commits.lock().len() >= count {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        self.commits.lock().len() >= count
    }

    /// Stops all threads and joins them.
    pub fn shutdown(self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(PipeCmd::Shutdown);
        }
        drop(self.router_tx);
        drop(self.cmd_txs);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn pipe_node_loop<V: Value>(
    id: NodeId,
    params: Params,
    pipe_cfg: PipelineConfig,
    cfg: RuntimeConfig,
    rx: Receiver<PipeCmd<V>>,
    router_tx: Sender<RouterMsg<SlotMsg<V>>>,
    commits: Arc<Mutex<Vec<CommitRecord<V>>>>,
    start: Instant,
) {
    let mut pipe: SlotPipeline<V> = SlotPipeline::new(id, params, pipe_cfg);
    // Caller-owned output buffer reused across every pipeline call.
    let mut out: Vec<PipeOutput<V>> = Vec::new();

    let now_local = |start: Instant| {
        LocalTime::from_nanos(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX))
    };
    let tick: std::time::Duration = cfg.tick.into();
    let mut next_tick = Instant::now() + tick;
    loop {
        let timeout = next_tick.saturating_duration_since(Instant::now());
        let cmd = rx.recv_timeout(timeout);
        let now = now_local(start);
        match cmd {
            Ok(PipeCmd::Deliver { from, msg }) => {
                pipe.on_message(now, from, &msg, &mut out);
            }
            Ok(PipeCmd::Submit(value)) => {
                pipe.enqueue(value);
                pipe.pump(now, &mut out);
            }
            Ok(PipeCmd::Shutdown) => return,
            Err(RecvTimeoutError::Timeout) => {
                next_tick = Instant::now() + tick;
                pipe.on_tick(now, &mut out);
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        for o in out.drain(..) {
            match o {
                PipeOutput::Broadcast(msg) => {
                    // One channel send per broadcast; the router samples
                    // the per-destination link delays when it fans out.
                    let _ = router_tx.send(RouterMsg {
                        due: Instant::now(),
                        from: id,
                        dest: RouterDest::All,
                        msg: Arc::new(msg),
                    });
                }
                PipeOutput::Send(to, msg) => {
                    // Catch-up traffic is unicast: log-served replies go
                    // straight to the lagging peer.
                    let _ = router_tx.send(RouterMsg {
                        due: Instant::now(),
                        from: id,
                        dest: RouterDest::One(to),
                        msg: Arc::new(msg),
                    });
                }
                PipeOutput::WakeAt(at) => {
                    // Honor the precise wake-up by shortening the tick.
                    let wait = at.since_or_zero(now);
                    let due = Instant::now() + std::time::Duration::from(wait);
                    if due < next_tick {
                        next_tick = due;
                    }
                }
                PipeOutput::Event(PipeEvent::Committed { slot, value }) => {
                    commits.lock().push(CommitRecord {
                        node: id,
                        slot,
                        value,
                        elapsed: start.elapsed(),
                    });
                }
                // Per-slot protocol events and catch-up adoptions are
                // interior progress; the committed prefix is the API.
                PipeOutput::Event(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssbyz_types::Duration;

    const STREAM: u64 = 8;

    #[test]
    fn pipeline_cluster_serves_a_stream_in_slot_order() {
        let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
        let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params).with_window(4);
        let cluster: PipelineCluster<u64> =
            PipelineCluster::spawn(params, pipe_cfg, RuntimeConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(30));
        for v in 0..STREAM {
            cluster.submit(500 + v).unwrap();
        }
        assert!(
            cluster.wait_for_commits(4 * STREAM as usize, std::time::Duration::from_secs(20)),
            "commits: {:?}",
            cluster.commits().len()
        );
        let logs = cluster.committed_logs();
        for (i, log) in logs.iter().enumerate() {
            assert_eq!(log.len(), STREAM as usize, "node {i} missing commits");
            for (slot, (got_slot, got_val)) in log.iter().enumerate() {
                assert_eq!(*got_slot, slot as u64, "node {i} out of slot order");
                assert_eq!(**got_val, 500 + slot as u64, "node {i} wrong value");
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn pipeline_cluster_shutdown_is_clean_without_traffic() {
        let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
        let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params);
        let cluster: PipelineCluster<u64> =
            PipelineCluster::spawn(params, pipe_cfg, RuntimeConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(cluster.commits().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn forged_slot_initiator_does_not_commit() {
        use ssbyz_core::Msg;
        let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
        let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params);
        let cluster: PipelineCluster<u64> =
            PipelineCluster::spawn(params, pipe_cfg, RuntimeConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(20));
        cluster
            .inject(
                NodeId::new(2),
                NodeId::new(3),
                SlotMsg::Slot {
                    slot: 0,
                    attempt: 0,
                    inner: Msg::Initiator {
                        general: NodeId::new(1),
                        value: Arc::new(9),
                    },
                },
            )
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(150));
        assert!(cluster.commits().is_empty());
        cluster.shutdown();
    }
}
