//! Threaded wall-clock execution of the slot pipeline: a
//! [`PipelineCluster`] serves a continuous stream of client values, one
//! [`SlotPipeline`] per node thread, commits applied in slot order to
//! each node's replicated decision log.
//!
//! The cluster is generic over the message plane via the
//! [`Transport`] seam from `ssbyz-wire`:
//!
//! * [`InProcessTransport`] (the default) is the golden model — the
//!   crossbeam-channel delay router shared with the one-shot
//!   [`crate::Cluster`], same wheel, same per-destination jitter,
//!   instantiated over [`SlotMsg`] payloads;
//! * [`TcpTransport`] (via [`PipelineCluster::spawn_tcp`]) runs the
//!   same node threads over authenticated, length-prefixed frames on a
//!   loopback TCP mesh driven by a single readiness-loop reactor.
//!
//! The node event loop is identical under both — only the sending
//! handle differs — which is what lets the equivalence battery pin the
//! two transports to bit-identical decision logs.
//!
//! ```no_run
//! use ssbyz_core::{Params, PipelineConfig};
//! use ssbyz_runtime::{PipelineCluster, RuntimeConfig};
//! use ssbyz_types::{Duration, NodeId};
//!
//! let params = Params::from_d(4, 1, Duration::from_millis(20), 0)?;
//! let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params);
//! let cluster: PipelineCluster<u64> =
//!     PipelineCluster::spawn(params, pipe_cfg, RuntimeConfig::default());
//! for v in 0..8u64 {
//!     cluster.submit(v)?;
//! }
//! cluster.wait_for_commits(4 * 8, std::time::Duration::from_secs(10))?;
//! cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use ssbyz_core::{LocalTime, Params, PipeEvent, PipeOutput, PipelineConfig, SlotMsg, SlotPipeline};
use ssbyz_types::{NodeId, Value};
use ssbyz_wire::{TcpTransport, Transport, TransportTx, WireConfig, WireValue};

use crate::{router_loop, ClusterError, RouterDest, RouterMsg, RuntimeConfig};

/// Commands accepted by a pipeline node thread.
enum PipeCmd<V> {
    Deliver { from: NodeId, msg: Arc<SlotMsg<V>> },
    Submit(V),
    Shutdown,
}

/// One slot commit observed on the cluster: `node` applied `value` at
/// `slot` in its replicated log, `elapsed` after cluster start.
#[derive(Debug, Clone)]
pub struct CommitRecord<V> {
    /// The committing node.
    pub node: NodeId,
    /// The slot number (per-node logs are gap-free and in slot order).
    pub slot: u64,
    /// The decided value (shared wire handle, no deep copy).
    pub value: Arc<V>,
    /// Wall-clock time since cluster start.
    pub elapsed: std::time::Duration,
}

/// The in-process message plane: the crossbeam delay router behind the
/// [`Transport`] seam. This is the golden model the TCP reactor is
/// pinned against — one router thread, a shared timer wheel, an
/// independently sampled link delay per destination.
pub struct InProcessTransport<V: Value> {
    router_tx: Sender<RouterMsg<SlotMsg<V>>>,
    thread: JoinHandle<()>,
}

impl<V: Value> InProcessTransport<V> {
    /// Spawns the router thread. Matured deliveries for node `i` are
    /// wrapped by `wrap` and pushed into `delivery[i]`.
    #[must_use]
    pub fn start<C, F>(cfg: RuntimeConfig, delivery: Vec<Sender<C>>, wrap: F) -> Self
    where
        C: Send + 'static,
        F: Fn(NodeId, Arc<SlotMsg<V>>) -> C + Send + 'static,
    {
        let (router_tx, router_rx) = unbounded::<RouterMsg<SlotMsg<V>>>();
        let thread = std::thread::spawn(move || {
            router_loop(router_rx, delivery, cfg, wrap);
        });
        InProcessTransport { router_tx, thread }
    }
}

impl<V: Value> Transport<V> for InProcessTransport<V> {
    type Tx = InProcessTx<V>;

    fn tx(&self) -> InProcessTx<V> {
        InProcessTx {
            tx: self.router_tx.clone(),
        }
    }

    fn shutdown(self) {
        // Dropping the last sender disconnects the router's receive
        // side; the loop returns on its own. Node threads are already
        // joined by the time the cluster calls this, so their `Tx`
        // clones are gone.
        drop(self.router_tx);
        let _ = self.thread.join();
    }
}

/// Sending handle for [`InProcessTransport`]; one clone per node
/// thread.
pub struct InProcessTx<V: Value> {
    tx: Sender<RouterMsg<SlotMsg<V>>>,
}

impl<V: Value> Clone for InProcessTx<V> {
    fn clone(&self) -> Self {
        InProcessTx {
            tx: self.tx.clone(),
        }
    }
}

impl<V: Value> TransportTx<V> for InProcessTx<V> {
    fn broadcast(&self, from: NodeId, msg: SlotMsg<V>) {
        // One channel send per broadcast carrying one Arc; the router
        // samples the per-destination link delays when it fans out.
        let _ = self.tx.send(RouterMsg {
            due: Instant::now(),
            from,
            dest: RouterDest::All,
            msg: Arc::new(msg),
        });
    }

    fn unicast(&self, from: NodeId, to: NodeId, msg: SlotMsg<V>) {
        let _ = self.tx.send(RouterMsg {
            due: Instant::now(),
            from,
            dest: RouterDest::One(to),
            msg: Arc::new(msg),
        });
    }
}

/// A live cluster of slot-pipeline threads serving a value stream,
/// generic over its message plane (`T`). `spawn` keeps the in-process
/// router; [`PipelineCluster::spawn_tcp`] runs the same node threads
/// over the authenticated TCP reactor.
pub struct PipelineCluster<V: Value, T: Transport<V> = InProcessTransport<V>> {
    cmd_txs: Vec<Sender<PipeCmd<V>>>,
    commits: Arc<Mutex<Vec<CommitRecord<V>>>>,
    /// Node threads only; transport threads are owned by `transport`.
    threads: Vec<JoinHandle<()>>,
    transport: T,
    proposer: NodeId,
    n: usize,
}

impl<V: Value> PipelineCluster<V> {
    /// Spawns `params.n()` pipeline threads plus the in-process delay
    /// router. `pipe_cfg` configures every node's multiplexer (same
    /// window, retry and catch-up policy cluster-wide).
    #[must_use]
    pub fn spawn(params: Params, pipe_cfg: PipelineConfig, cfg: RuntimeConfig) -> Self {
        let spawned: Result<Self, std::convert::Infallible> =
            Self::spawn_with(params, pipe_cfg, cfg.tick.into(), |delivery| {
                Ok(InProcessTransport::start(cfg, delivery, |from, msg| {
                    PipeCmd::Deliver { from, msg }
                }))
            });
        match spawned {
            Ok(cluster) => cluster,
            Err(never) => match never {},
        }
    }
}

impl<V: Value + WireValue> PipelineCluster<V, TcpTransport<V>> {
    /// Spawns `params.n()` pipeline threads over the authenticated TCP
    /// loopback mesh: binds the listener, performs the MAC'd
    /// handshakes, and starts the readiness-loop reactor. `tick` is the
    /// node engine tick (the link-delay knobs of [`RuntimeConfig`] do
    /// not apply — loopback latency is whatever the kernel provides).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding or connecting the mesh.
    pub fn spawn_tcp(
        params: Params,
        pipe_cfg: PipelineConfig,
        tick: ssbyz_types::Duration,
        wire: WireConfig,
    ) -> std::io::Result<Self> {
        let n = params.n();
        Self::spawn_with(params, pipe_cfg, tick.into(), |delivery| {
            TcpTransport::start(n, wire, delivery, |from, msg| PipeCmd::Deliver {
                from,
                msg,
            })
        })
    }
}

impl<V: Value, T: Transport<V>> PipelineCluster<V, T> {
    /// Shared spawn plumbing: builds the per-node command channels,
    /// starts the transport over them, then the node threads with the
    /// transport's sending handles.
    fn spawn_with<E>(
        params: Params,
        pipe_cfg: PipelineConfig,
        tick: std::time::Duration,
        make_transport: impl FnOnce(Vec<Sender<PipeCmd<V>>>) -> Result<T, E>,
    ) -> Result<Self, E> {
        let n = params.n();
        let proposer = pipe_cfg.proposer;
        let start = Instant::now();
        let commits: Arc<Mutex<Vec<CommitRecord<V>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut cmd_txs = Vec::with_capacity(n);
        let mut cmd_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            // Unbounded on purpose: the TCP reactor delivers into these
            // channels from its single thread, so one slow node on a
            // bounded channel would block the reactor and freeze every
            // link in the mesh. Depth is bounded in practice by the
            // engines' timing windows — stale traffic ages out instead
            // of accumulating.
            let (tx, rx) = unbounded::<PipeCmd<V>>();
            cmd_txs.push(tx);
            cmd_rxs.push(rx);
        }
        let transport = make_transport(cmd_txs.clone())?;
        let mut threads = Vec::new();
        for (i, rx) in cmd_rxs.into_iter().enumerate() {
            let id = NodeId::new(i as u32);
            let tx = transport.tx();
            let commits = Arc::clone(&commits);
            let pipe_cfg_i = pipe_cfg.clone();
            threads.push(std::thread::spawn(move || {
                pipe_node_loop(id, params, pipe_cfg_i, tick, rx, tx, commits, start);
            }));
        }
        Ok(PipelineCluster {
            cmd_txs,
            commits,
            threads,
            transport,
            proposer,
            n,
        })
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The running transport instance (reactor statistics, raw-byte
    /// injection hooks on the TCP plane).
    #[must_use]
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Enqueues `value` on the proposer's stream; it will be batched
    /// into the next open slot the window allows.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Shutdown`] if the proposer thread has exited
    /// (previously a stringly-typed error callers could not match on).
    pub fn submit(&self, value: V) -> Result<(), ClusterError> {
        self.cmd_txs[self.proposer.index()]
            .send(PipeCmd::Submit(value))
            .map_err(|_| ClusterError::Shutdown)
    }

    /// Injects a raw slot message with a forged sender (adversary
    /// testing). On the in-process plane this bypasses link delay; on
    /// the TCP plane it is stamped with the *claimed sender's own*
    /// link keys — an insider Byzantine node, which may say anything
    /// but can never forge another node's MAC.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Shutdown`] if the cluster is no longer live.
    pub fn inject(&self, from: NodeId, to: NodeId, msg: SlotMsg<V>) -> Result<(), ClusterError> {
        if self.threads.iter().any(JoinHandle::is_finished) {
            return Err(ClusterError::Shutdown);
        }
        self.transport.tx().unicast(from, to, msg);
        Ok(())
    }

    /// Snapshot of all commit records so far, in observation order.
    #[must_use]
    pub fn commits(&self) -> Vec<CommitRecord<V>> {
        self.commits.lock().clone()
    }

    /// Per-node committed logs, each in slot order.
    #[must_use]
    pub fn committed_logs(&self) -> Vec<Vec<(u64, Arc<V>)>> {
        let mut logs: Vec<Vec<(u64, Arc<V>)>> = vec![Vec::new(); self.n];
        for c in self.commits() {
            logs[c.node.index()].push((c.slot, c.value));
        }
        logs
    }

    /// Waits (up to `timeout`) until `count` commit records exist
    /// across the cluster.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Shutdown`] as soon as any node thread has exited
    /// (the count can no longer be reached — previously this blocked
    /// for the full timeout and then reported a misleading plain
    /// `false`); [`ClusterError::Timeout`] if the deadline passes
    /// first.
    pub fn wait_for_commits(
        &self,
        count: usize,
        timeout: std::time::Duration,
    ) -> Result<(), ClusterError> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.commits.lock().len() >= count {
                return Ok(());
            }
            if self.threads.iter().any(JoinHandle::is_finished) {
                return Err(ClusterError::Shutdown);
            }
            if Instant::now() >= deadline {
                return Err(ClusterError::Timeout);
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    /// Stops all threads and joins them: node threads first (their
    /// transport handles drop with them), then the transport's I/O
    /// machinery.
    pub fn shutdown(self) {
        let PipelineCluster {
            cmd_txs,
            threads,
            transport,
            ..
        } = self;
        for tx in &cmd_txs {
            let _ = tx.send(PipeCmd::Shutdown);
        }
        drop(cmd_txs);
        for t in threads {
            let _ = t.join();
        }
        transport.shutdown();
    }
}

#[allow(clippy::too_many_arguments)]
fn pipe_node_loop<V: Value, Tx: TransportTx<V>>(
    id: NodeId,
    params: Params,
    pipe_cfg: PipelineConfig,
    tick: std::time::Duration,
    rx: Receiver<PipeCmd<V>>,
    tx: Tx,
    commits: Arc<Mutex<Vec<CommitRecord<V>>>>,
    start: Instant,
) {
    let mut pipe: SlotPipeline<V> = SlotPipeline::new(id, params, pipe_cfg);
    // Caller-owned output buffer reused across every pipeline call.
    let mut out: Vec<PipeOutput<V>> = Vec::new();

    let now_local = |start: Instant| {
        LocalTime::from_nanos(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX))
    };
    let mut next_tick = Instant::now() + tick;
    loop {
        let timeout = next_tick.saturating_duration_since(Instant::now());
        let cmd = rx.recv_timeout(timeout);
        let now = now_local(start);
        match cmd {
            Ok(PipeCmd::Deliver { from, msg }) => {
                pipe.on_message(now, from, &msg, &mut out);
            }
            Ok(PipeCmd::Submit(value)) => {
                pipe.enqueue(value);
                pipe.pump(now, &mut out);
            }
            Ok(PipeCmd::Shutdown) => return,
            Err(RecvTimeoutError::Timeout) => {
                next_tick = Instant::now() + tick;
                pipe.on_tick(now, &mut out);
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        for o in out.drain(..) {
            match o {
                PipeOutput::Broadcast(msg) => {
                    tx.broadcast(id, msg);
                }
                PipeOutput::Send(to, msg) => {
                    // Catch-up traffic is unicast: log-served replies go
                    // straight to the lagging peer.
                    tx.unicast(id, to, msg);
                }
                PipeOutput::WakeAt(at) => {
                    // Honor the precise wake-up by shortening the tick.
                    let wait = at.since_or_zero(now);
                    let due = Instant::now() + std::time::Duration::from(wait);
                    if due < next_tick {
                        next_tick = due;
                    }
                }
                PipeOutput::Event(PipeEvent::Committed { slot, value }) => {
                    commits.lock().push(CommitRecord {
                        node: id,
                        slot,
                        value,
                        elapsed: start.elapsed(),
                    });
                }
                // Per-slot protocol events and catch-up adoptions are
                // interior progress; the committed prefix is the API.
                PipeOutput::Event(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssbyz_types::Duration;

    const STREAM: u64 = 8;

    #[test]
    fn pipeline_cluster_serves_a_stream_in_slot_order() {
        let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
        let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params).with_window(4);
        let cluster: PipelineCluster<u64> =
            PipelineCluster::spawn(params, pipe_cfg, RuntimeConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(30));
        for v in 0..STREAM {
            cluster.submit(500 + v).unwrap();
        }
        assert_eq!(
            cluster.wait_for_commits(4 * STREAM as usize, std::time::Duration::from_secs(20)),
            Ok(()),
            "commits: {:?}",
            cluster.commits().len()
        );
        let logs = cluster.committed_logs();
        for (i, log) in logs.iter().enumerate() {
            assert_eq!(log.len(), STREAM as usize, "node {i} missing commits");
            for (slot, (got_slot, got_val)) in log.iter().enumerate() {
                assert_eq!(*got_slot, slot as u64, "node {i} out of slot order");
                assert_eq!(**got_val, 500 + slot as u64, "node {i} wrong value");
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn pipeline_cluster_shutdown_is_clean_without_traffic() {
        let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
        let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params);
        let cluster: PipelineCluster<u64> =
            PipelineCluster::spawn(params, pipe_cfg, RuntimeConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(cluster.commits().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn forged_slot_initiator_does_not_commit() {
        use ssbyz_core::Msg;
        let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
        let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params);
        let cluster: PipelineCluster<u64> =
            PipelineCluster::spawn(params, pipe_cfg, RuntimeConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(20));
        cluster
            .inject(
                NodeId::new(2),
                NodeId::new(3),
                SlotMsg::Slot {
                    slot: 0,
                    attempt: 0,
                    inner: Msg::Initiator {
                        general: NodeId::new(1),
                        value: Arc::new(9),
                    },
                },
            )
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(150));
        assert!(cluster.commits().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn tcp_pipeline_cluster_serves_a_stream() {
        let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
        let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params).with_window(4);
        let cluster: PipelineCluster<u64, TcpTransport<u64>> = PipelineCluster::spawn_tcp(
            params,
            pipe_cfg,
            Duration::from_millis(5),
            WireConfig::from_seed(7),
        )
        .expect("loopback mesh");
        std::thread::sleep(std::time::Duration::from_millis(30));
        for v in 0..STREAM {
            cluster.submit(900 + v).unwrap();
        }
        assert_eq!(
            cluster.wait_for_commits(4 * STREAM as usize, std::time::Duration::from_secs(20)),
            Ok(()),
            "commits: {:?}",
            cluster.commits().len()
        );
        let logs = cluster.committed_logs();
        for (i, log) in logs.iter().enumerate() {
            assert_eq!(log.len(), STREAM as usize, "node {i} missing commits");
            for (slot, (got_slot, got_val)) in log.iter().enumerate() {
                assert_eq!(*got_slot, slot as u64, "node {i} out of slot order");
                assert_eq!(**got_val, 900 + slot as u64, "node {i} wrong value");
            }
        }
        let stats = cluster.transport().stats();
        assert!(stats.frames_delivered > 0, "no frames crossed the wire");
        assert_eq!(stats.rejected_mac, 0, "clean run rejected frames");
        cluster.shutdown();
    }

    #[test]
    fn wait_for_commits_reports_timeout_not_false() {
        let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
        let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params);
        let cluster: PipelineCluster<u64> =
            PipelineCluster::spawn(params, pipe_cfg, RuntimeConfig::default());
        assert_eq!(
            cluster.wait_for_commits(1, std::time::Duration::from_millis(50)),
            Err(ClusterError::Timeout)
        );
        cluster.shutdown();
    }
}
