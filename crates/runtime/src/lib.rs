//! # `ssbyz-runtime` — threaded wall-clock execution
//!
//! Runs the *same* sans-io [`Engine`] that the deterministic simulator
//! exercises, but on real threads with real clocks: one OS thread per
//! node, crossbeam channels as the authenticated transport, and a router
//! thread that injects configurable link delays. This demonstrates that
//! the protocol library is directly adoptable outside the simulator — the
//! engine code is byte-for-byte identical.
//!
//! ```no_run
//! use ssbyz_core::Params;
//! use ssbyz_runtime::{Cluster, RuntimeConfig};
//! use ssbyz_types::Duration;
//!
//! let params = Params::from_d(4, 1, Duration::from_millis(20), 0)?;
//! let cluster: Cluster<u64> = Cluster::spawn(params, RuntimeConfig::default());
//! cluster.initiate(ssbyz_types::NodeId::new(0), 42)?;
//! cluster.wait_for_decisions(4, std::time::Duration::from_secs(5))?;
//! let decisions = cluster.decisions();
//! cluster.shutdown();
//! assert_eq!(decisions.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;

pub use pipeline::{CommitRecord, InProcessTransport, InProcessTx, PipelineCluster};

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssbyz_core::{Engine, Event, LocalTime, Msg, Outbox, Output, Params};
use ssbyz_sched::{EventQueue, TimerWheel};
use ssbyz_types::{Duration, NodeId, Value};

/// Wall-clock runtime knobs.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Engine tick period.
    pub tick: Duration,
    /// Injected link delay range.
    pub delay_min: Duration,
    /// Upper end of the injected link delay.
    pub delay_max: Duration,
    /// Seed for delay sampling.
    pub seed: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            tick: Duration::from_millis(5),
            delay_min: Duration::from_micros(200),
            delay_max: Duration::from_millis(2),
            seed: 0,
        }
    }
}

/// Why a cluster operation could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// A worker thread (node, router, or wire reactor) has exited, so
    /// the cluster can no longer accept or complete work. Callers
    /// should tear the cluster down rather than retry.
    Shutdown,
    /// The wait deadline passed before the requested progress existed.
    Timeout,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Shutdown => write!(f, "cluster worker has shut down"),
            ClusterError::Timeout => write!(f, "timed out waiting for cluster progress"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Commands accepted by a node thread.
enum NodeCmd<V> {
    Deliver { from: NodeId, msg: Arc<Msg<V>> },
    Initiate(V),
    Shutdown,
}

/// A timestamped protocol event observed on the cluster.
#[derive(Debug, Clone)]
pub struct ClusterEvent<V> {
    /// The node that emitted the event.
    pub node: NodeId,
    /// The protocol event.
    pub event: Event<V>,
    /// Wall-clock time since cluster start.
    pub elapsed: std::time::Duration,
}

/// Destination shape of a routed message.
pub(crate) enum RouterDest {
    /// Unicast (the adversary-inject path); `due` includes the sampled
    /// link delay.
    One(NodeId),
    /// Batched fan-out to every node: the whole broadcast is **one**
    /// channel send (it used to be n). `due` is the send instant; the
    /// *router* samples an independent link delay per destination when
    /// it fans the entry out into wheel deliveries, so per-destination
    /// jitter — and the message reorderings it produces — is exactly
    /// what the per-send path had.
    All,
}

/// A routed wire message, generic over the payload: the one-shot
/// cluster routes `Msg<V>`, the pipeline cluster routes `SlotMsg<V>` —
/// same router, same wheel, same delay model.
pub(crate) struct RouterMsg<M> {
    pub(crate) due: Instant,
    pub(crate) from: NodeId,
    pub(crate) dest: RouterDest,
    /// Shared payload: fan-out clones the `Arc`, never the message.
    pub(crate) msg: Arc<M>,
}

/// A delivery waiting on the router's wheel.
struct Pending<M> {
    to: NodeId,
    from: NodeId,
    msg: Arc<M>,
}

/// A live cluster of engine threads.
pub struct Cluster<V: Value> {
    cmd_txs: Vec<Sender<NodeCmd<V>>>,
    router_tx: Sender<RouterMsg<Msg<V>>>,
    events: Arc<Mutex<Vec<ClusterEvent<V>>>>,
    threads: Vec<JoinHandle<()>>,
    start: Instant,
    n: usize,
}

impl<V: Value> Cluster<V> {
    /// Spawns `params.n()` node threads plus the delay router.
    #[must_use]
    pub fn spawn(params: Params, cfg: RuntimeConfig) -> Self {
        let n = params.n();
        let start = Instant::now();
        let events: Arc<Mutex<Vec<ClusterEvent<V>>>> = Arc::new(Mutex::new(Vec::new()));
        let (router_tx, router_rx) = unbounded::<RouterMsg<Msg<V>>>();
        let mut cmd_txs = Vec::with_capacity(n);
        let mut cmd_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded::<NodeCmd<V>>(4096);
            cmd_txs.push(tx);
            cmd_rxs.push(rx);
        }
        let mut threads = Vec::new();
        {
            let cmd_txs = cmd_txs.clone();
            threads.push(std::thread::spawn(move || {
                router_loop(router_rx, cmd_txs, cfg, |from, msg| NodeCmd::Deliver {
                    from,
                    msg,
                });
            }));
        }
        for (i, rx) in cmd_rxs.into_iter().enumerate() {
            let id = NodeId::new(i as u32);
            let router_tx = router_tx.clone();
            let events = Arc::clone(&events);
            let cfg_i = cfg;
            threads.push(std::thread::spawn(move || {
                node_loop(id, params, cfg_i, rx, router_tx, events, start);
            }));
        }
        Cluster {
            cmd_txs,
            router_tx,
            events,
            threads,
            start,
            n,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Asks `node` to initiate agreement on `value` (as General).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Shutdown`] if the node thread has exited.
    pub fn initiate(&self, node: NodeId, value: V) -> Result<(), ClusterError> {
        self.cmd_txs[node.index()]
            .send(NodeCmd::Initiate(value))
            .map_err(|_| ClusterError::Shutdown)
    }

    /// Injects a raw message with a forged sender (adversary testing).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Shutdown`] if the router thread has exited.
    pub fn inject(&self, from: NodeId, to: NodeId, msg: Msg<V>) -> Result<(), ClusterError> {
        self.router_tx
            .send(RouterMsg {
                due: Instant::now(),
                from,
                dest: RouterDest::One(to),
                msg: Arc::new(msg),
            })
            .map_err(|_| ClusterError::Shutdown)
    }

    /// Snapshot of all events so far.
    #[must_use]
    pub fn events(&self) -> Vec<ClusterEvent<V>> {
        self.events.lock().clone()
    }

    /// Convenience: all `Decided` events so far as `(node, value)`. The
    /// values are the shared wire handles — no deep copy is made here
    /// either.
    #[must_use]
    pub fn decisions(&self) -> Vec<(NodeId, Arc<V>)> {
        self.events()
            .into_iter()
            .filter_map(|e| match e.event {
                Event::Decided { value, .. } => Some((e.node, value)),
                _ => None,
            })
            .collect()
    }

    /// Wall-clock time since the cluster started.
    #[must_use]
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Waits (up to `timeout`) until `count` decisions exist.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Shutdown`] as soon as any worker thread has
    /// exited (the count can no longer be reached — previously this
    /// blocked for the full timeout and then reported a misleading
    /// plain `false`); [`ClusterError::Timeout`] if the deadline
    /// passes first.
    pub fn wait_for_decisions(
        &self,
        count: usize,
        timeout: std::time::Duration,
    ) -> Result<(), ClusterError> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.decisions().len() >= count {
                return Ok(());
            }
            if self.threads.iter().any(JoinHandle::is_finished) {
                return Err(ClusterError::Shutdown);
            }
            if Instant::now() >= deadline {
                return Err(ClusterError::Timeout);
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    /// Stops all threads and joins them.
    pub fn shutdown(self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(NodeCmd::Shutdown);
        }
        drop(self.router_tx);
        drop(self.cmd_txs);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// The delay router: deliveries wait on the shared timer wheel until
/// their injected link delay elapses, then are handed to the destination
/// node thread. A broadcast arrives as one channel message and is fanned
/// out here — the router samples an independent delay per destination
/// from its own seeded RNG, so every peer sees its own jitter (and the
/// reorderings that implies) exactly as under the per-send path. Due
/// times are nanoseconds since the router's epoch; wheel seq numbers
/// preserve arrival FIFO order within a due time.
///
/// Generic over the wire payload `M` and the node-command type `C`:
/// `wrap` turns a matured delivery into the destination thread's
/// command, so the one-shot cluster (`Msg<V>` / `NodeCmd`) and the
/// pipeline cluster (`SlotMsg<V>` / its own command enum) share the
/// whole delay model.
/// Furthest-future due time the router will schedule, relative to now.
/// Deliveries beyond it (clock skew, arithmetic overflow upstream) are
/// clamped: they arrive late rather than never.
const MAX_DELAY_HORIZON_NS: u64 = 60 * 1_000_000_000;

pub(crate) fn router_loop<M, C, F>(
    rx: Receiver<RouterMsg<M>>,
    cmd_txs: Vec<Sender<C>>,
    cfg: RuntimeConfig,
    wrap: F,
) where
    M: Send + Sync,
    F: Fn(NodeId, Arc<M>) -> C,
{
    let epoch = Instant::now();
    let now_ns = |epoch: Instant| u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let mut wheel: TimerWheel<Pending<M>> = TimerWheel::for_span_hint(cfg.delay_max.as_nanos());
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7075_7265_726f_7574);
    loop {
        let timeout = wheel
            .peek_due()
            .map(|due| std::time::Duration::from_nanos(due.saturating_sub(now_ns(epoch))))
            .unwrap_or(std::time::Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(m) => {
                // A due timestamp too far past the epoch to fit in u64
                // nanoseconds used to saturate to `u64::MAX`, a due time
                // the wheel never reaches — the message was silently
                // dropped *forever*. Saturate to a bounded horizon past
                // "now" instead: the delivery is late, not lost.
                let horizon_ns = now_ns(epoch).saturating_add(MAX_DELAY_HORIZON_NS);
                let base_ns = u64::try_from(m.due.saturating_duration_since(epoch).as_nanos())
                    .map_or(horizon_ns, |ns| ns.min(horizon_ns));
                match m.dest {
                    RouterDest::One(to) => {
                        wheel.insert(
                            base_ns,
                            Pending {
                                to,
                                from: m.from,
                                msg: m.msg,
                            },
                        );
                    }
                    RouterDest::All => {
                        for dst in 0..cmd_txs.len() {
                            let delay_ns = if cfg.delay_min == cfg.delay_max {
                                cfg.delay_min.as_nanos()
                            } else {
                                rng.gen_range(cfg.delay_min.as_nanos()..=cfg.delay_max.as_nanos())
                            };
                            wheel.insert(
                                base_ns.saturating_add(delay_ns),
                                Pending {
                                    to: NodeId::new(dst as u32),
                                    from: m.from,
                                    msg: Arc::clone(&m.msg),
                                },
                            );
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        // Single pop per iteration: peeking and popping in two steps
        // invited a panic if the two calls ever disagreed (`expect`
        // on the pop). With `if let` the router degrades to "nothing
        // due" instead of killing the thread — and with it the whole
        // cluster's message plane.
        while wheel.peek_due().is_some_and(|due| due <= now_ns(epoch)) {
            if let Some(entry) = wheel.pop() {
                let p = entry.payload;
                let _ = cmd_txs[p.to.index()].send(wrap(p.from, p.msg));
            } else {
                break;
            }
        }
    }
}

fn node_loop<V: Value>(
    id: NodeId,
    params: Params,
    cfg: RuntimeConfig,
    rx: Receiver<NodeCmd<V>>,
    router_tx: Sender<RouterMsg<Msg<V>>>,
    events: Arc<Mutex<Vec<ClusterEvent<V>>>>,
    start: Instant,
) {
    let mut engine: Engine<V> = Engine::new(id, params);
    // One pooled outbox for the thread's lifetime: dispatch of duplicate
    // and suppressed deliveries allocates nothing.
    let mut outbox: Outbox<V> = Outbox::new();

    let now_local = |start: Instant| {
        LocalTime::from_nanos(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX))
    };
    let tick: std::time::Duration = cfg.tick.into();
    let mut next_tick = Instant::now() + tick;
    loop {
        let timeout = next_tick.saturating_duration_since(Instant::now());
        let cmd = rx.recv_timeout(timeout);
        let now = now_local(start);
        match cmd {
            Ok(NodeCmd::Deliver { from, msg }) => {
                engine.on_message_ref(now, from, &msg, &mut outbox);
            }
            // A refused initiation leaves the outbox empty.
            Ok(NodeCmd::Initiate(value)) => {
                let _ = engine.initiate(now, value, &mut outbox);
            }
            Ok(NodeCmd::Shutdown) => return,
            Err(RecvTimeoutError::Timeout) => {
                next_tick = Instant::now() + tick;
                engine.on_tick(now, &mut outbox);
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        for o in outbox.drain() {
            match o {
                Output::Broadcast(msg) => {
                    // Batched fan-out: the whole broadcast is one channel
                    // send carrying one Arc; the router samples the
                    // per-destination link delays when it fans out.
                    let _ = router_tx.send(RouterMsg {
                        due: Instant::now(),
                        from: id,
                        dest: RouterDest::All,
                        msg: Arc::new(msg),
                    });
                }
                Output::WakeAt(at) => {
                    // Honor the precise wake-up by shortening the tick.
                    let wait = at.since_or_zero(now);
                    let due = Instant::now() + std::time::Duration::from(wait);
                    if due < next_tick {
                        next_tick = due;
                    }
                }
                Output::Event(event) => {
                    events.lock().push(ClusterEvent {
                        node: id,
                        event,
                        elapsed: start.elapsed(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_node_cluster_agrees() {
        let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
        let cluster: Cluster<u64> = Cluster::spawn(params, RuntimeConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(30));
        cluster.initiate(NodeId::new(0), 42).unwrap();
        assert_eq!(
            cluster.wait_for_decisions(4, std::time::Duration::from_secs(5)),
            Ok(()),
            "decisions: {:?}",
            cluster.decisions()
        );
        let decisions = cluster.decisions();
        assert!(decisions.iter().all(|(_, v)| **v == 42));
        cluster.shutdown();
    }

    #[test]
    fn shutdown_is_clean_without_traffic() {
        let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
        let cluster: Cluster<u64> = Cluster::spawn(params, RuntimeConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(cluster.decisions().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn injected_forged_initiator_is_ignored() {
        let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
        let cluster: Cluster<u64> = Cluster::spawn(params, RuntimeConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(20));
        cluster
            .inject(
                NodeId::new(2),
                NodeId::new(3),
                Msg::Initiator {
                    general: NodeId::new(1),
                    value: Arc::new(9),
                },
            )
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert!(cluster.decisions().is_empty());
        cluster.shutdown();
    }

    #[test]
    fn recurrent_initiations_in_wall_clock() {
        // d = 20ms ⇒ Δ0 = 260ms. Two initiations spaced ≥ Δ0 both decide.
        let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
        let cluster: Cluster<u64> = Cluster::spawn(params, RuntimeConfig::default());
        std::thread::sleep(std::time::Duration::from_millis(30));
        cluster.initiate(NodeId::new(0), 1).unwrap();
        cluster
            .wait_for_decisions(4, std::time::Duration::from_secs(5))
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(400));
        cluster.initiate(NodeId::new(0), 2).unwrap();
        assert_eq!(
            cluster.wait_for_decisions(8, std::time::Duration::from_secs(5)),
            Ok(()),
            "second agreement: {:?}",
            cluster.decisions()
        );
        cluster.shutdown();
    }
}
