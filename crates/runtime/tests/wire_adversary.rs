//! Byte-level corruption battery for the TCP wire path.
//!
//! Two layers:
//!
//! * a **stochastic campaign** — the reactor's built-in corruption
//!   adversary flips bits, truncates, replays, and forges MACs on a
//!   fraction of all outbound frames while a real stream commits. The
//!   cluster must still commit exactly the submitted values (retries
//!   and catch-up recover the dropped frames), with zero panics and
//!   zero forged commits;
//! * **deterministic injections** — hand-built hostile byte strings
//!   pushed onto live links via the raw test hook, pinned against the
//!   reject counters: forged MACs bounce at the frame gate *before any
//!   payload parse*, and framing garbage kills only the one poisoned
//!   connection.

use std::sync::Arc;

use ssbyz_core::{Msg, Params, PipelineConfig, SlotMsg};
use ssbyz_runtime::PipelineCluster;
use ssbyz_types::{Duration, NodeId};
use ssbyz_wire::{
    encode_slot_msg, frame::write_frame, CorruptConfig, MacKey, TcpTransport, WireConfig,
};

const STREAM: u64 = 6;

fn params_n4() -> Params {
    Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap()
}

fn spawn_tcp(wire: WireConfig) -> PipelineCluster<u64, TcpTransport<u64>> {
    let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params_n4()).with_window(2);
    PipelineCluster::spawn_tcp(params_n4(), pipe_cfg, Duration::from_millis(5), wire)
        .expect("loopback mesh")
}

#[test]
fn corruption_campaign_commits_only_submitted_values() {
    // Corrupt ~1 in 8 outbound frames across every mode.
    let wire = WireConfig::from_seed(99).with_corruption(CorruptConfig::all_modes(1234, 1, 8));
    let cluster = spawn_tcp(wire);
    std::thread::sleep(std::time::Duration::from_millis(30));
    for v in 0..STREAM {
        cluster.submit(40_000 + v).unwrap();
    }
    cluster
        .wait_for_commits(4 * STREAM as usize, std::time::Duration::from_secs(60))
        .expect("stream must commit despite corruption");

    let logs = cluster.committed_logs();
    for (i, log) in logs.iter().enumerate() {
        assert_eq!(log.len(), STREAM as usize, "node {i} log length");
        for (slot, (got_slot, got_val)) in log.iter().enumerate() {
            assert_eq!(*got_slot, slot as u64, "node {i} slot order");
            assert_eq!(
                **got_val,
                40_000 + slot as u64,
                "node {i} committed a value nobody submitted"
            );
        }
    }

    let stats = cluster.transport().stats();
    assert!(
        stats.corrupted_injected > 0,
        "adversary never fired: {stats:?}"
    );
    // Bit flips, MAC forgeries, and truncations all land on the MAC /
    // header gates; replays pass them (they are authentic bytes) and
    // are absorbed by protocol-level dedup instead.
    assert!(
        stats.rejected_mac + stats.rejected_header > 0,
        "corrupted frames were never rejected: {stats:?}"
    );
    cluster.shutdown();
}

#[test]
fn forged_mac_frames_bounce_before_parse() {
    let cluster = spawn_tcp(WireConfig::from_seed(5));
    std::thread::sleep(std::time::Duration::from_millis(30));
    let before = cluster.transport().stats();

    // An attacker without the cluster master secret crafts a perfectly
    // well-formed frame carrying a committable payload, MAC'd with its
    // own key, and squats on the 2 → 3 link.
    let forged_value = 666_666u64;
    let payload_msg: SlotMsg<u64> = SlotMsg::Slot {
        slot: 0,
        attempt: 0,
        inner: Msg::Initiator {
            general: NodeId::new(0),
            value: Arc::new(forged_value),
        },
    };
    let mut payload = Vec::new();
    encode_slot_msg(&payload_msg, &mut payload);
    let attacker_key = MacKey::from_bytes([0x5a; 32]);
    let mut frame = Vec::new();
    write_frame(&mut frame, &attacker_key, NodeId::new(2), &payload);
    for _ in 0..16 {
        cluster
            .transport()
            .inject_raw(NodeId::new(2), NodeId::new(3), frame.clone());
    }
    std::thread::sleep(std::time::Duration::from_millis(200));

    let after = cluster.transport().stats();
    assert!(
        after.rejected_mac >= before.rejected_mac + 16,
        "forged frames not rejected at the MAC gate: {after:?}"
    );
    // Reject-before-parse: a rejected frame never reaches the decoder.
    assert_eq!(after.rejected_decode, before.rejected_decode);
    // And nothing committed — not the forged value, not anything else.
    assert!(
        cluster.commits().is_empty(),
        "forged traffic produced commits"
    );
    cluster.shutdown();
}

#[test]
fn framing_garbage_poisons_only_one_link() {
    let cluster = spawn_tcp(WireConfig::from_seed(6));
    std::thread::sleep(std::time::Duration::from_millis(30));

    // Raw garbage with a hostile length prefix: framing on 1 → 2 is
    // beyond recovery, the reactor must drop that connection (and only
    // that one) rather than stall or crash.
    let mut garbage = vec![0xffu8; 64];
    garbage[0] = 0xff;
    cluster
        .transport()
        .inject_raw(NodeId::new(1), NodeId::new(2), garbage);
    std::thread::sleep(std::time::Duration::from_millis(200));

    let stats = cluster.transport().stats();
    assert!(
        stats.rejected_header > 0,
        "poisoned stream not detected: {stats:?}"
    );
    assert!(cluster.commits().is_empty());

    // The mesh minus one link still carries a stream to completion:
    // n = 4, f = 1 tolerates a lossy pair.
    for v in 0..STREAM {
        cluster.submit(50_000 + v).unwrap();
    }
    cluster
        .wait_for_commits(4 * STREAM as usize, std::time::Duration::from_secs(60))
        .expect("stream must commit around the dead link");
    for (i, log) in cluster.committed_logs().iter().enumerate() {
        for (slot, (_, got_val)) in log.iter().enumerate() {
            assert_eq!(**got_val, 50_000 + slot as u64, "node {i} wrong value");
        }
    }
    cluster.shutdown();
}

#[test]
fn truncated_authentic_frames_are_rejected() {
    let cluster = spawn_tcp(WireConfig::from_seed(8));
    std::thread::sleep(std::time::Duration::from_millis(30));
    let before = cluster.transport().stats();

    // An authentic frame for the 0 → 1 link (the attacker replays
    // captured bytes), cut short with a fixed-up length prefix so the
    // stream stays in sync: the MAC no longer covers what arrives.
    let payload_msg: SlotMsg<u64> = SlotMsg::Heartbeat { committed: 9 };
    let mut payload = Vec::new();
    encode_slot_msg(&payload_msg, &mut payload);
    let master = WireConfig::from_seed(8).master_key;
    let key = MacKey::derive_link(&master, NodeId::new(0), NodeId::new(1));
    let mut frame = Vec::new();
    write_frame(&mut frame, &key, NodeId::new(0), &payload);
    let cut = frame.len() - 2;
    let body_len = u32::try_from(cut - 4).unwrap();
    let mut truncated = frame[..cut].to_vec();
    truncated[..4].copy_from_slice(&body_len.to_le_bytes());
    for _ in 0..8 {
        cluster
            .transport()
            .inject_raw(NodeId::new(0), NodeId::new(1), truncated.clone());
    }
    std::thread::sleep(std::time::Duration::from_millis(200));

    let after = cluster.transport().stats();
    assert!(
        after.rejected_mac >= before.rejected_mac + 8,
        "truncated frames not rejected: {after:?}"
    );
    assert!(cluster.commits().is_empty());

    // The *untruncated* authentic bytes, replayed verbatim, do pass the
    // gate — replay defense is the protocol's job, not the MAC's.
    let delivered_before = cluster.transport().stats().frames_delivered;
    cluster
        .transport()
        .inject_raw(NodeId::new(0), NodeId::new(1), frame);
    std::thread::sleep(std::time::Duration::from_millis(200));
    assert!(
        cluster.transport().stats().frames_delivered > delivered_before,
        "authentic replayed frame should still deliver"
    );
    cluster.shutdown();
}
