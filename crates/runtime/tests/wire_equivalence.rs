//! Transport equivalence battery: the authenticated TCP reactor must
//! produce **bit-identical** replicated decision logs to the in-process
//! channel router (the golden model) for the same submitted stream.
//!
//! This works because the committed log is a protocol-level guarantee,
//! not a timing artifact: one proposer, first-write-wins slots, gap-free
//! commit order. Two correct transports may reorder and delay whatever
//! they like — the log that comes out the other side is the same bytes.

use std::sync::Arc;

use ssbyz_core::{Params, PipelineConfig, SlotMsg};
use ssbyz_runtime::{InProcessTransport, PipelineCluster, RuntimeConfig};
use ssbyz_types::{Duration, NodeId, Value};
use ssbyz_wire::{encode_slot_msg, TcpTransport, Transport, WireConfig, WireValue};

const STREAM: u64 = 12;

fn params_n7() -> Params {
    Params::from_d(7, 2, Duration::from_millis(20), 0).unwrap()
}

/// Canonical byte image of one node's committed log: every `(slot,
/// value)` rendered through the wire codec itself, concatenated in slot
/// order. Comparing these compares the logs bit for bit.
fn log_bytes<V: Value + WireValue>(log: &[(u64, Arc<V>)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (slot, value) in log {
        let entry: SlotMsg<V> = SlotMsg::CatchUpReply {
            slot: *slot,
            value: Arc::clone(value),
        };
        encode_slot_msg(&entry, &mut out);
    }
    out
}

/// Drives `STREAM` submissions through `cluster` and returns the
/// per-node committed logs.
fn drive<T: Transport<u64>>(cluster: &PipelineCluster<u64, T>) -> Vec<Vec<(u64, Arc<u64>)>> {
    std::thread::sleep(std::time::Duration::from_millis(30));
    for v in 0..STREAM {
        cluster.submit(7_000 + v).unwrap();
    }
    cluster
        .wait_for_commits(7 * STREAM as usize, std::time::Duration::from_secs(60))
        .expect("full stream commits");
    cluster.committed_logs()
}

#[test]
fn n7_decision_logs_bit_identical_across_transports() {
    let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params_n7()).with_window(4);

    let inproc: PipelineCluster<u64> = PipelineCluster::spawn(
        params_n7(),
        pipe_cfg.clone(),
        RuntimeConfig {
            seed: 42,
            ..RuntimeConfig::default()
        },
    );
    let inproc_logs = drive(&inproc);
    inproc.shutdown();

    let tcp: PipelineCluster<u64, TcpTransport<u64>> = PipelineCluster::spawn_tcp(
        params_n7(),
        pipe_cfg,
        Duration::from_millis(5),
        WireConfig::from_seed(42),
    )
    .expect("loopback mesh");
    let tcp_logs = drive(&tcp);
    let stats = tcp.transport().stats();
    tcp.shutdown();

    assert_eq!(inproc_logs.len(), 7);
    assert_eq!(tcp_logs.len(), 7);
    for (i, (a, b)) in inproc_logs.iter().zip(tcp_logs.iter()).enumerate() {
        assert_eq!(a.len(), STREAM as usize, "node {i} in-process log length");
        assert_eq!(b.len(), STREAM as usize, "node {i} tcp log length");
        // Structural equality first (better failure messages) ...
        for ((sa, va), (sb, vb)) in a.iter().zip(b.iter()) {
            assert_eq!(sa, sb, "node {i} slot order differs");
            assert_eq!(**va, **vb, "node {i} slot {sa} value differs");
        }
        // ... then the bit-level pin through the codec itself.
        assert_eq!(
            log_bytes(a),
            log_bytes(b),
            "node {i} logs are not bit-identical"
        );
    }

    // The TCP run really crossed the wire, cleanly.
    assert!(stats.frames_sent > 0, "no frames sent");
    assert!(stats.frames_delivered > 0, "no frames delivered");
    assert_eq!(stats.rejected_mac, 0, "clean run rejected MACs");
    assert_eq!(stats.rejected_decode, 0, "clean run rejected payloads");
}

#[test]
fn same_seed_same_transport_logs_are_reproducible() {
    // Fixed-seed determinism of the *logs* (not the timings): two
    // in-process runs with the same seed and stream commit the same
    // bytes. This is the property the cross-transport pin relies on.
    let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params_n7()).with_window(4);
    let mut images: Vec<Vec<Vec<u8>>> = Vec::new();
    for _ in 0..2 {
        let cluster: PipelineCluster<u64> = PipelineCluster::spawn(
            params_n7(),
            pipe_cfg.clone(),
            RuntimeConfig {
                seed: 7,
                ..RuntimeConfig::default()
            },
        );
        let logs = drive(&cluster);
        cluster.shutdown();
        images.push(logs.iter().map(|l| log_bytes(l)).collect());
    }
    assert_eq!(images[0], images[1], "same-seed logs differ across runs");
}

#[test]
fn explicit_transport_construction_matches_spawn() {
    // The `Transport` seam is public: building the in-process plane by
    // hand (as a custom runtime would) behaves like `spawn`.
    let params = Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap();
    let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params);
    let cluster: PipelineCluster<u64> =
        PipelineCluster::spawn(params, pipe_cfg, RuntimeConfig::default());
    std::thread::sleep(std::time::Duration::from_millis(20));
    for v in 0..4u64 {
        cluster.submit(v).unwrap();
    }
    cluster
        .wait_for_commits(16, std::time::Duration::from_secs(20))
        .unwrap();
    cluster.shutdown();

    // Standalone use of the seam outside a cluster: broadcast one
    // message through a bare InProcessTransport and observe delivery.
    let (tx0, rx0) = crossbeam_channel::unbounded();
    let (tx1, rx1) = crossbeam_channel::unbounded();
    let transport: InProcessTransport<u64> = InProcessTransport::start(
        RuntimeConfig::default(),
        vec![tx0, tx1],
        |from, msg: Arc<SlotMsg<u64>>| (from, msg),
    );
    use ssbyz_wire::TransportTx;
    transport
        .tx()
        .broadcast(NodeId::new(0), SlotMsg::Heartbeat { committed: 3 });
    for rx in [rx0, rx1] {
        let (from, msg) = rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("delivery");
        assert_eq!(from, NodeId::new(0));
        assert_eq!(*msg, SlotMsg::Heartbeat { committed: 3 });
    }
    transport.shutdown();
}
