//! Regenerates the paper-reproduction tables E1–E11 (see DESIGN.md §4 and
//! EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! experiments [all|e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|e11] [--seeds N]
//! ```

use ssbyz_adversary::{SpamGeneral, StaggeredGeneral, TwoFacedGeneral};
use ssbyz_bench::{header, in_d, row};
use ssbyz_harness::experiments as ex;
use ssbyz_pulse::run_pulse;
use ssbyz_types::{Duration, NodeId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut seeds: u64 = 5;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seeds needs a number");
            }
            other => which = other.to_string(),
        }
        i += 1;
    }
    let all = which == "all";
    if all || which == "e1" {
        e1(seeds);
    }
    if all || which == "e2" {
        e2(seeds);
    }
    if all || which == "e3" {
        e3(seeds);
    }
    if all || which == "e4" {
        e4(seeds);
    }
    if all || which == "e5" {
        e5(seeds);
    }
    if all || which == "e6" {
        e6(seeds.min(5));
    }
    if all || which == "e7" {
        e7(seeds);
    }
    if all || which == "e8" {
        e8(seeds);
    }
    if all || which == "e9" {
        e9(seeds.min(3));
    }
    if all || which == "e10" {
        e10();
    }
    if all || which == "e11" {
        e11(seeds.min(3));
    }
}

fn e1(seeds: u64) {
    println!("\n## E1 — Validity + Timeliness-2 (correct General)\n");
    println!(
        "{}",
        header(&[
            "n",
            "f",
            "runs",
            "max decide skew (≤2d)",
            "max anchor skew (≤d)",
            "max latency (≤4d)",
            "violations"
        ])
    );
    for (n, f) in [
        (4, 1),
        (7, 2),
        (10, 3),
        (13, 4),
        (16, 5),
        (19, 6),
        (25, 8),
        (31, 10),
    ] {
        let r = ex::e1_validity(n, f, seeds);
        let d = r.latency_bound / 4;
        println!(
            "{}",
            row(&[
                r.n.to_string(),
                r.f.to_string(),
                r.runs.to_string(),
                in_d(r.max_decision_skew, d),
                in_d(r.max_anchor_skew, d),
                in_d(r.max_latency, d),
                r.violations.len().to_string(),
            ])
        );
        for v in &r.violations {
            println!("  VIOLATION: {v}");
        }
    }
}

fn e2(seeds: u64) {
    println!("\n## E2 — Agreement under a Byzantine General (n=7, f=2)\n");
    println!(
        "{}",
        header(&[
            "strategy",
            "runs",
            "decide runs",
            "quiet runs",
            "max decide skew (≤3d)",
            "violations"
        ])
    );
    let n = 7;
    let f = 2;
    let rows = vec![
        ex::e2_byzantine_general("two-faced (split 3/3)", n, f, seeds, &|_, p| {
            Box::new(TwoFacedGeneral::new(
                100,
                200,
                (1..4).map(NodeId::new).collect(),
                p,
            ))
        }),
        ex::e2_byzantine_general("two-faced (split 1/5)", n, f, seeds, &|_, p| {
            Box::new(TwoFacedGeneral::new(100, 200, vec![NodeId::new(1)], p))
        }),
        ex::e2_byzantine_general(
            "staggered (same value, 10d spread)",
            n,
            f,
            seeds,
            &|_, p| Box::new(StaggeredGeneral::new(300, p.d() * 2u64, p.d() * 10u64)),
        ),
        ex::e2_byzantine_general("spam (5 values, every 2d)", n, f, seeds, &|_, p| {
            Box::new(SpamGeneral::new(vec![1, 2, 3, 4, 5], p.d() * 2u64))
        }),
    ];
    for r in rows {
        let d = Duration::from_micros(10_001); // d of the default config
        println!(
            "{}",
            row(&[
                r.strategy.to_string(),
                r.runs.to_string(),
                r.decide_runs.to_string(),
                r.quiet_runs.to_string(),
                in_d(r.max_decision_skew, d),
                r.violations.len().to_string(),
            ])
        );
        for v in &r.violations {
            println!("  VIOLATION: {v}");
        }
    }
}

fn e3(seeds: u64) {
    println!("\n## E3 — Termination within Δ_agr (n=7, f=2)\n");
    println!(
        "{}",
        header(&["scenario", "returns", "max running time", "bound Δ_agr+8d"])
    );
    for r in ex::e3_termination(7, 2, seeds) {
        println!(
            "{}",
            row(&[
                r.scenario.to_string(),
                r.returns.to_string(),
                format!("{}", r.max_running_time),
                format!("{}", r.bound),
            ])
        );
    }
}

fn e4(seeds: u64) {
    println!("\n## E4 — O(f′) early stopping (n=13, f=4)\n");
    println!(
        "{}",
        header(&[
            "f′",
            "ours (mean completion)",
            "lock-step baseline",
            "bound Δ_agr"
        ])
    );
    for fa in 0..=4 {
        let r = ex::e4_early_stopping(13, 4, fa, seeds);
        println!(
            "{}",
            row(&[
                r.f_actual.to_string(),
                format!("{}", r.ours),
                format!("{}", r.baseline),
                format!("{}", r.bound),
            ])
        );
    }
}

fn e5(seeds: u64) {
    println!("\n## E5 — Message-driven rounds vs lock-step (n=7, f=2)\n");
    println!(
        "{}",
        header(&["δ_act / δ", "ours (mean completion)", "baseline", "speedup"])
    );
    for pct in [1, 2, 5, 10, 25, 50, 75, 100] {
        let r = ex::e5_message_driven(7, 2, pct, seeds);
        let speedup = if r.ours.is_zero() {
            "∞".to_string()
        } else {
            format!(
                "{:.1}x",
                r.baseline.as_nanos() as f64 / r.ours.as_nanos() as f64
            )
        };
        println!(
            "{}",
            row(&[
                format!("{pct}%"),
                format!("{}", r.ours),
                format!("{}", r.baseline),
                speedup,
            ])
        );
    }
}

fn e6(seeds: u64) {
    println!("\n## E6 — Convergence from arbitrary state\n");
    println!(
        "{}",
        header(&[
            "n",
            "f",
            "runs",
            "converged",
            "settle granted",
            "bound Δ_stb"
        ])
    );
    for (n, f) in [(4, 1), (7, 2)] {
        let r = ex::e6_convergence(n, f, seeds, 90);
        println!(
            "{}",
            row(&[
                n.to_string(),
                f.to_string(),
                r.runs.to_string(),
                r.converged.to_string(),
                format!("{}", r.settle),
                format!("{}", r.delta_stb),
            ])
        );
        for v in r.violations.iter().take(5) {
            println!("  VIOLATION: {v}");
        }
    }
}

fn e7(seeds: u64) {
    println!("\n## E7 — Initiator-Accept bounds [IA-1]\n");
    println!(
        "{}",
        header(&[
            "n",
            "f",
            "runs",
            "max accept latency (≤4d)",
            "max accept skew (≤2d)",
            "max anchor skew (≤d)",
            "violations"
        ])
    );
    for (n, f) in [(4, 1), (7, 2), (13, 4), (19, 6), (31, 10)] {
        let r = ex::e7_ia_bounds(n, f, seeds);
        println!(
            "{}",
            row(&[
                r.n.to_string(),
                r.f.to_string(),
                r.runs.to_string(),
                in_d(r.max_accept_latency, r.d),
                in_d(r.max_accept_skew, r.d),
                in_d(r.max_anchor_skew, r.d),
                r.violations.len().to_string(),
            ])
        );
    }
}

fn e8(seeds: u64) {
    println!("\n## E8 — Unforgeability [IA-2] / [TPS-2]\n");
    println!(
        "{}",
        header(&[
            "n",
            "f",
            "runs",
            "forged accepts",
            "forged decisions",
            "clean completions"
        ])
    );
    for (n, f) in [(4, 1), (7, 2)] {
        let r = ex::e8_unforgeability(n, f, seeds);
        println!(
            "{}",
            row(&[
                n.to_string(),
                f.to_string(),
                r.runs.to_string(),
                r.forged_accepts.to_string(),
                r.forged_decisions.to_string(),
                r.clean_completions.to_string(),
            ])
        );
    }
}

fn e9(seeds: u64) {
    println!("\n## E9 — Uniqueness / separation [IA-4] under spam (n=7, f=2)\n");
    println!(
        "{}",
        header(&[
            "runs",
            "I-accepts",
            "min distinct-value anchor gap (>4d)",
            "violations"
        ])
    );
    let r = ex::e9_separation(7, 2, seeds);
    println!(
        "{}",
        row(&[
            r.runs.to_string(),
            r.accepts.to_string(),
            r.min_distinct_gap
                .map_or("n/a".to_string(), |g| format!("{g}")),
            r.violations.len().to_string(),
        ])
    );
    for v in r.violations.iter().take(5) {
        println!("  VIOLATION: {v}");
    }
}

fn e10() {
    println!("\n## E10 — Pulse synchronization atop ss-Byz-Agree\n");
    println!(
        "{}",
        header(&["n", "f", "waves", "full waves", "max pulse skew", "d"])
    );
    for (n, f) in [(4, 1), (7, 2)] {
        let d = Duration::from_millis(10);
        let r = run_pulse(n, f, d, 5, 7);
        println!(
            "{}",
            row(&[
                n.to_string(),
                f.to_string(),
                r.waves.len().to_string(),
                r.full_waves(n).len().to_string(),
                format!("{}", r.max_skew(n)),
                format!("{d}"),
            ])
        );
    }
}

fn e11(seeds: u64) {
    println!("\n## E11 — Message complexity (per agreement)\n");
    println!(
        "{}",
        header(&["n", "f", "messages", "messages / n²", "messages / n³"])
    );
    for (n, f) in [(4, 1), (7, 2), (10, 3), (13, 4), (19, 6), (25, 8)] {
        let r = ex::e11_message_complexity(n, f, seeds);
        println!(
            "{}",
            row(&[
                n.to_string(),
                f.to_string(),
                r.messages.to_string(),
                format!("{:.1}", r.per_n2),
                format!("{:.2}", r.per_n3),
            ])
        );
    }
}
