//! # `ssbyz-bench` — benchmark harness and experiment tables
//!
//! Two entry points:
//!
//! * `cargo run -p ssbyz-bench --bin experiments --release -- all` prints
//!   the reproduction tables E1–E11 (paper bounds vs measured values);
//! * `cargo bench` runs the Criterion benchmarks (simulation throughput,
//!   protocol latency shapes, primitive micro-benchmarks, ablations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ssbyz_types::Duration;

/// Formats a duration as a multiple of `d` plus absolute value.
#[must_use]
pub fn in_d(x: Duration, d: Duration) -> String {
    if d.is_zero() {
        return format!("{x}");
    }
    let ratio = x.as_nanos() as f64 / d.as_nanos() as f64;
    format!("{ratio:.2}d ({x})")
}

/// Renders one markdown table row.
#[must_use]
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Renders a markdown header + separator.
#[must_use]
pub fn header(cells: &[&str]) -> String {
    let head = format!("| {} |", cells.join(" | "));
    let sep = format!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    format!("{head}\n{sep}")
}
