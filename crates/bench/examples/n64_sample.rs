//! Multi-sample re-baseline driver for the n = 64 whole-simulation rows
//! (`msg_driven_vs_lockstep/n64*`): runs the fault-free correct-General
//! scenario at n = 64, f = 21 across seeds, in both wave modes, on both
//! network shapes:
//!
//! * **jittered** (45–450 µs draws) — nanosecond delay granularity means
//!   same-due waves essentially never form, so the coalescing gate stays
//!   cold and both modes must time alike (the single-iteration criterion
//!   row swings with container load; this multi-sample run is the
//!   number to trust);
//! * **fixed** (250 µs, min == max) — every delivery instant is
//!   draw-free, broadcast fan-in lands as whole waves, and the coalesced
//!   mode feeds each into one `Engine::on_wave_ref` pass.
//!
//! Numbers are committed in `BENCH_store_hot_path.json` under
//! `wave_coalescing`.

use ssbyz_harness::experiments::run_correct_general_waved;
use ssbyz_simnet::WaveMode;
use ssbyz_types::Duration;
use std::time::Instant;

fn sample(label: &str, min: Duration, max: Duration, mode: WaveMode, seeds: u64) {
    let mut total = std::time::Duration::ZERO;
    for seed in 1..=seeds {
        let t = Instant::now();
        let (res, _) = run_correct_general_waved(64, 21, seed, min, max, 1, mode);
        assert!(!res.decisions.is_empty(), "{label}: run must decide");
        let dt = t.elapsed();
        total += dt;
        println!("{label} {mode:?} seed {seed}: {dt:?}");
    }
    println!(
        "{label} {mode:?} mean over {seeds}: {:?}",
        total / seeds as u32
    );
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    for mode in [WaveMode::Coalesced, WaveMode::PerMessage] {
        sample(
            "jittered(45-450us)",
            Duration::from_micros(45),
            Duration::from_micros(450),
            mode,
            seeds,
        );
    }
    for mode in [WaveMode::Coalesced, WaveMode::PerMessage] {
        sample(
            "fixed(250us)",
            Duration::from_micros(250),
            Duration::from_micros(250),
            mode,
            seeds,
        );
    }
}
