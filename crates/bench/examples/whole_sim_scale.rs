//! Multi-sample whole-simulation scale rows: the fault-free
//! correct-General scenario timed end to end at n = 64, 256 and 512
//! (n = 1024 gated on host memory, see below), on both engines where
//! tolerable, mean of ≥ 3 seeds per cell (this folds the
//! `n64_sample` re-baseline methodology into a JSON-emitting driver —
//! single-iteration criterion rows swing with container load and are
//! not trusted for whole-sim numbers).
//!
//! Cells:
//!
//! * n = 64, f = 21 — sequential vs sharded, fixed 250 µs links (the
//!   wave-coalescing shape: every delivery instant is draw-free and
//!   fan-in lands as whole waves);
//! * n = 256, f = 85 — sequential vs sharded; the wall-clock ratio is
//!   the sharded engine's headline A/B (on a single-core host the
//!   ceiling is 1×; the critical-path parallelism figure reports what
//!   the window structure exposes for real cores);
//! * n = 512, f = 170 — sharded only (the sequential wheel does not
//!   finish in tolerable wall-clock); δ is auto-scaled per
//!   `clamped_delta` so the processing bound stays honest, and the row
//!   records the scaled value;
//! * n = 1024, f = 341 — behind `--max-n 1024`, for hosts with ≥ 256
//!   GiB of RAM. The limit is protocol state, not the simulator: each
//!   node's msgd-broadcast keeps one triplet (three `ArrivalLog`s of
//!   `n` 72-byte slots) per concurrent broadcaster, and during the
//!   relay storm all `n` instances are live at once — `n³ · 216 B`
//!   system-wide, measured exactly at n = 256 (3.6 GiB) and
//!   extrapolating to ~232 GiB at n = 1024.
//!
//! Runs terminate early once every node has decided (plus a 4d drain),
//! capped at the Δ_agr + 30d battery horizon. Output is a JSON fragment
//! on stdout; the committed numbers live in `BENCH_store_hot_path.json`
//! under `whole_sim_scale`.
//!
//! ```text
//! cargo run --release -p ssbyz-bench --example whole_sim_scale \
//!     [-- --seeds N] [--threads T] [--max-n 1024]
//! ```

use ssbyz_harness::faults::clamped_delta;
use ssbyz_harness::{ScenarioBuilder, ScenarioConfig};
use ssbyz_simnet::{SimMode, WaveMode};
use ssbyz_types::{Duration, NodeId, RealTime};
use std::time::Instant;

struct Cell {
    n: usize,
    engine: SimMode,
    delta: Option<Duration>,
    delta_scaled: bool,
    runs: Vec<RunStats>,
}

struct RunStats {
    wall: std::time::Duration,
    events: u64,
    windows: u64,
    windowed_events: u64,
    critical_events: u64,
}

impl Cell {
    fn mean_ns(&self) -> f64 {
        let total: u128 = self.runs.iter().map(|r| r.wall.as_nanos()).sum();
        total as f64 / self.runs.len() as f64
    }

    fn min_ns(&self) -> u128 {
        self.runs
            .iter()
            .map(|r| r.wall.as_nanos())
            .min()
            .unwrap_or(0)
    }

    fn parallelism(&self) -> Option<f64> {
        let (w, c): (u64, u64) = self.runs.iter().fold((0, 0), |(w, c), r| {
            (w + r.windowed_events, c + r.critical_events)
        });
        (c > 0).then(|| w as f64 / c as f64)
    }
}

fn engine_name(mode: SimMode) -> String {
    match mode {
        SimMode::Sequential => "sequential".into(),
        SimMode::Sharded(t) => format!("sharded-{t}"),
    }
}

/// One timed whole-sim run: build, run in 2d slices until every node
/// decided (then drain 4d), capped at the battery horizon.
fn run_once(n: usize, f: usize, seed: u64, engine: SimMode, delta: Option<Duration>) -> RunStats {
    let mut cfg = ScenarioConfig::new(n, f)
        .with_seed(seed)
        .with_actual_delays(Duration::from_micros(250), Duration::from_micros(250));
    if let Some(delta) = delta {
        cfg.delta = delta;
        cfg.tick = cfg.params().expect("valid").d();
        cfg.actual_max = cfg.actual_max.min(delta);
    }
    let params = cfg.params().expect("valid");
    let d = params.d();
    let initiate_off = d * 4u64;
    let horizon = RealTime::ZERO + params.delta_agr() + d * 30u64;

    let started = Instant::now();
    let mut b = ScenarioBuilder::new(cfg)
        .sim_mode(engine)
        .wave_mode(WaveMode::Coalesced)
        .correct_general(initiate_off, 7);
    for _ in 1..n {
        b = b.correct();
    }
    let mut sc = b.build();
    let mut now = RealTime::ZERO;
    loop {
        now = (now + d * 2u64).min(horizon);
        sc.run_until(now);
        if now >= horizon {
            break;
        }
        let res = sc.result();
        let decided = res
            .correct
            .iter()
            .filter(|q| res.decision_of(**q, NodeId::new(0)).is_some())
            .count();
        if decided == n {
            sc.run_until((now + d * 4u64).min(horizon));
            break;
        }
    }
    let res = sc.result();
    assert_eq!(
        res.correct
            .iter()
            .filter(|q| res.decision_of(**q, NodeId::new(0)).is_some())
            .count(),
        n,
        "n={n} seed={seed} {}: every node must decide",
        engine_name(engine)
    );
    let wall = started.elapsed();
    let (windows, windowed, critical) = sc.sim().as_sharded().map_or((0, 0, 0), |s| {
        (s.windows_run(), s.windowed_events(), s.critical_events())
    });
    RunStats {
        wall,
        events: sc.sim().events_processed(),
        windows,
        windowed_events: windowed,
        critical_events: critical,
    }
}

fn run_cell(n: usize, f: usize, engine: SimMode, threads: usize, seeds: u64) -> Cell {
    // Both engines of one n get the SAME δ (clamped for the sharded
    // lane count) — the A/B ratio must compare identical simulations.
    let (delta, delta_scaled) = clamped_delta(n, threads);
    let delta = delta_scaled.then_some(delta);
    if delta_scaled {
        eprintln!(
            "  note: n={n} outgrows the default δ's processing bound on {threads} lane(s); δ scaled to {}",
            delta.expect("scaled")
        );
    }
    let mut runs = Vec::new();
    for seed in 1..=seeds {
        let stats = run_once(n, f, seed, engine, delta);
        println!(
            "  n={n:<5} {:<12} seed {seed}: {:?} ({} events)",
            engine_name(engine),
            stats.wall,
            stats.events
        );
        runs.push(stats);
    }
    Cell {
        n,
        engine,
        delta,
        delta_scaled,
        runs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str, default: u64| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let seeds = flag("--seeds", 3);
    let threads = flag("--threads", 4) as usize;
    let max_n = flag("--max-n", 512) as usize;

    println!("whole-sim scale rows (seeds 1..={seeds}, sharded threads={threads}):");
    let mut cells = Vec::new();
    for (n, f) in [(64usize, 21usize), (256, 85), (512, 170), (1024, 341)] {
        if n > max_n {
            continue;
        }
        // The sequential wheel bows out at n = 1024 (hours per seed).
        if n <= 256 {
            cells.push(run_cell(n, f, SimMode::Sequential, threads, seeds));
        }
        cells.push(run_cell(n, f, SimMode::Sharded(threads), threads, seeds));
    }

    println!("\n\"whole_sim_scale\": {{");
    println!("  \"workload\": \"fault-free correct-General, fixed 250us links, coalesced waves, early-terminated at all-decided + 4d, mean of seeds 1-{seeds}\",");
    for cell in &cells {
        let key = format!("n{}_{}", cell.n, engine_name(cell.engine).replace('-', "_"));
        println!(
            "  \"{key}_mean_ns\": {:.1},\n  \"{key}_min_ns\": {},",
            cell.mean_ns(),
            cell.min_ns()
        );
        if let Some(p) = cell.parallelism() {
            let windows: u64 = cell.runs.iter().map(|r| r.windows).sum();
            println!(
                "  \"{key}_windows\": {},\n  \"{key}_critical_path_parallelism\": {p:.2},",
                windows / cell.runs.len() as u64
            );
        }
        if cell.delta_scaled {
            println!(
                "  \"{key}_delta_ns\": {},",
                cell.delta.expect("scaled").as_nanos()
            );
        }
    }
    for n in [64usize, 256] {
        let seq = cells
            .iter()
            .find(|c| c.n == n && c.engine == SimMode::Sequential);
        let sh = cells
            .iter()
            .find(|c| c.n == n && matches!(c.engine, SimMode::Sharded(_)));
        if let (Some(seq), Some(sh)) = (seq, sh) {
            println!(
                "  \"n{n}_sharded_vs_sequential_speedup\": {:.2},",
                seq.mean_ns() / sh.mean_ns()
            );
        }
    }
    println!("  \"f_per_n\": \"f = (n-1)/3 floor: 21/85/170/341\"");
    println!("}}");
}
