//! E6 companion bench: full convergence-from-arbitrary-state runs
//! (scrambled engines + network storm + probe agreement).

use criterion::{criterion_group, criterion_main, Criterion};
use ssbyz_harness::experiments::e6_convergence;

fn bench_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("convergence");
    g.sample_size(10);
    g.bench_function("n4_f1_storm_and_probe", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let row = e6_convergence(4, 1, 1, 90);
            assert_eq!(row.converged, 1, "{:?}", row.violations);
            row.converged
        });
    });
    g.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
