//! E5 companion bench: ours vs the lock-step baseline on a fast network
//! (actual delay 5% of δ). The protocol-level latency table is printed by
//! `experiments e5`; here Criterion compares the cost of simulating each.
//! The `n64` group re-baselines the message-driven simulation at n = 64
//! (f = 21) — the scale where event-queue cost dominates dispatch and
//! the timer wheel replaced the `BinaryHeap`.

use criterion::{criterion_group, criterion_main, Criterion};
use ssbyz_baseline::run_baseline;
use ssbyz_harness::experiments::{run_correct_general, run_correct_general_waved};
use ssbyz_simnet::WaveMode;
use ssbyz_types::Duration;

fn bench_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("msg_driven_vs_lockstep");
    g.sample_size(10);
    let actual_min = Duration::from_micros(45);
    let actual_max = Duration::from_micros(450); // 5% of δ = 9ms
    g.bench_function("ss_byz_agree", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (res, _) = run_correct_general(7, 2, seed, actual_min, actual_max, 1);
            assert!(!res.decisions.is_empty());
            res.metrics.sent
        });
    });
    g.bench_function("lockstep_baseline", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let res = run_baseline(
                7,
                2,
                Duration::from_micros(10_001),
                actual_min,
                actual_max,
                0,
                1,
                seed,
            );
            assert!(!res.decisions.is_empty());
            res.messages
        });
    });
    g.finish();
}

fn bench_n64(c: &mut Criterion) {
    let mut g = c.benchmark_group("msg_driven_vs_lockstep/n64");
    g.sample_size(10);
    let actual_min = Duration::from_micros(45);
    let actual_max = Duration::from_micros(450);
    g.bench_function("ss_byz_agree", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (res, _) = run_correct_general(64, 21, seed, actual_min, actual_max, 1);
            assert!(!res.decisions.is_empty());
            res.metrics.sent
        });
    });
    g.finish();
}

/// The wave-coalescing A/B at n = 64 on a **fixed-delay** network
/// (min == max, so every delivery instant is draw-free and the coalesced
/// mode merges same-instant fan-in into `on_wave_ref` batches). The
/// jittered `n64` group above never forms same-due waves — nanosecond
/// delay draws keep arrivals distinct — so this group is where
/// receiver-side coalescing shows up at whole-simulation scale.
fn bench_n64_fixed_delay(c: &mut Criterion) {
    let mut g = c.benchmark_group("msg_driven_vs_lockstep/n64_fixed_delay");
    g.sample_size(10);
    let delay = Duration::from_micros(250);
    g.bench_function("coalesced", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (res, _) =
                run_correct_general_waved(64, 21, seed, delay, delay, 1, WaveMode::Coalesced);
            assert!(!res.decisions.is_empty());
            res.metrics.sent
        });
    });
    g.bench_function("per_message", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (res, _) =
                run_correct_general_waved(64, 21, seed, delay, delay, 1, WaveMode::PerMessage);
            assert!(!res.decisions.is_empty());
            res.metrics.sent
        });
    });
    g.finish();
}

criterion_group!(benches, bench_comparison, bench_n64, bench_n64_fixed_delay);
criterion_main!(benches);
