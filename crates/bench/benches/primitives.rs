//! Micro-benchmarks of the core data structures and state machines:
//! the windowed arrival log, the timed variable, the SDR chain matcher
//! (via agreement message processing) and raw engine message throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ssbyz_core::store::{ArrivalLog, TimedVar};
use ssbyz_core::{Engine, IaKind, Msg, Outbox, Params};
use ssbyz_types::{Duration, LocalTime, NodeId};

fn bench_arrival_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("arrival_log");
    g.bench_function("record_and_window_query_32_senders", |b| {
        let mut log = ArrivalLog::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000;
            log.record(LocalTime::from_nanos(t), NodeId::new((t % 32) as u32));
            let count =
                log.distinct_in_window(LocalTime::from_nanos(t), Duration::from_nanos(40_000));
            if t.is_multiple_of(64_000) {
                log.prune(LocalTime::from_nanos(t), Duration::from_nanos(100_000));
            }
            count
        });
    });
    g.bench_function("kth_latest_32_senders", |b| {
        let mut log = ArrivalLog::new();
        for i in 0..32u64 {
            log.record(LocalTime::from_nanos(1_000 + i * 7), NodeId::new(i as u32));
        }
        b.iter(|| {
            log.kth_latest_in_window(
                LocalTime::from_nanos(2_000),
                Duration::from_nanos(1_500),
                21,
            )
        });
    });
    g.finish();
}

fn bench_timed_var(c: &mut Criterion) {
    c.bench_function("timed_var_set_and_query", |b| {
        let mut v: TimedVar<u64> = TimedVar::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 500;
            v.set(LocalTime::from_nanos(t), t);
            let q = v
                .at(LocalTime::from_nanos(t.saturating_sub(10_000)))
                .copied();
            if t.is_multiple_of(50_000) {
                v.prune(LocalTime::from_nanos(t), Duration::from_nanos(20_000));
            }
            q
        });
    });
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("ia_support_message_throughput_n7", |b| {
        let params = Params::from_d(7, 2, Duration::from_millis(10), 0).unwrap();
        let mut engine: Engine<u64> = Engine::new(NodeId::new(0), params);
        let mut ob = Outbox::new();
        let mut t = 1_000_000_000u64;
        let mut sender = 0u32;
        // Built once: wire payloads arrive Arc-shared, so constructing the
        // message is the sender's cost, not the dispatch under test.
        let msg = Msg::Ia {
            kind: IaKind::Support,
            general: NodeId::new(1),
            value: std::sync::Arc::new(7u64),
        };
        b.iter(|| {
            t += 10_000;
            sender = (sender + 1) % 7;
            engine.on_message_ref(LocalTime::from_nanos(t), NodeId::new(sender), &msg, &mut ob);
            ob.len()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_arrival_log,
    bench_timed_var,
    bench_engine_throughput
);
criterion_main!(benches);
