//! Ablation benches for the design choices called out in DESIGN.md §7:
//!
//! * **block T (early abort) on/off** — protocol-level abort completion
//!   with a silent General and planted anchors: with T disabled every
//!   abort waits the full `(2f+1)Φ`;
//! * **resend de-duplication gap** — message counts per agreement with
//!   the gap at `0` (paper-literal repetitive sending), `d` (default) and
//!   `4d`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssbyz_core::{Agreement, Duration, LocalTime, NodeId, Params};
use ssbyz_harness::experiments::run_correct_general;

/// Abort latency with vs without block T: drives a single Agreement state
/// machine to its abort via ticks and reports the local time it took.
fn abort_latency(params: Params) -> Duration {
    let tau_g = LocalTime::from_nanos(1_000_000_000_000);
    let mut agr: Agreement<u64> = Agreement::new(NodeId::new(1), NodeId::new(0), params);
    let mut out = Vec::new();
    // A late anchor (outside block R) with no broadcasters.
    agr.on_i_accept(
        tau_g + params.d() * 5u64,
        7,
        tau_g,
        &mut Vec::new(),
        &mut out,
    );
    let step = params.d();
    let mut now = tau_g;
    for _ in 0..((2 * params.f() as u64 + 2) * 8 + 8) {
        now += step;
        agr.on_tick(now, &mut out);
        if agr.has_returned() {
            return now.since(tau_g);
        }
    }
    now.since(tau_g)
}

fn bench_early_abort_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_block_t");
    let base = Params::from_d(10, 3, Duration::from_millis(10), 0).unwrap();
    let with_t = abort_latency(base);
    let without_t = abort_latency(base.without_early_abort());
    assert!(
        with_t < without_t,
        "block T must abort earlier: {with_t} vs {without_t}"
    );
    println!("ablation block T: abort with T = {with_t}, without T = {without_t}");
    g.bench_function("with_block_t", |b| b.iter(|| abort_latency(base)));
    g.bench_function("without_block_t", |b| {
        b.iter(|| abort_latency(base.without_early_abort()))
    });
    g.finish();
}

fn bench_resend_gap_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_resend_gap");
    g.sample_size(10);
    // Message count effect is reported through the iteration return value;
    // wall time tracks the extra simulation work of repetitive sending.
    {
        let label = "gap_d_default";
        g.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let (res, _) = run_correct_general(
                    7,
                    2,
                    seed,
                    Duration::from_micros(500),
                    Duration::from_millis(9),
                    1,
                );
                res.metrics.sent
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_early_abort_ablation,
    bench_resend_gap_ablation
);
criterion_main!(benches);
