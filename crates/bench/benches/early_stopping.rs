//! E4 companion bench: simulation cost as the number of *actual* faults
//! grows (n=13, f=4). The protocol-level completion times are printed by
//! `experiments e4`; this bench tracks the computational shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssbyz_harness::experiments::e4_early_stopping;

fn bench_early_stopping(c: &mut Criterion) {
    let mut g = c.benchmark_group("early_stopping");
    g.sample_size(10);
    for f_actual in [0usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(f_actual),
            &f_actual,
            |b, &fa| {
                b.iter(|| {
                    let row = e4_early_stopping(13, 4, fa, 1);
                    assert!(!row.ours.is_zero());
                    row.ours
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_early_stopping);
criterion_main!(benches);
