//! Scheduler hot-path micro-benchmarks: the hierarchical timer wheel vs
//! the retained `BinaryHeap` reference queue on the event-dispatch
//! workload that dominates simulation at n ≥ 64 — per-event `WakeAt`
//! rescheduling (cancel + reinsert) plus delivery insert/pop churn.
//! Collected numbers are committed in `BENCH_sched_hot_path.json`
//! (regenerate with
//! `SSBYZ_BENCH_JSON=/tmp/b.json cargo bench --bench sched_hot_path`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ssbyz_simnet::sched::reference::ReferenceQueue;
use ssbyz_simnet::sched::{EventQueue, TimerHandle, TimerWheel};

const SIZES: [usize; 3] = [4, 16, 64];

/// Simulated per-event step, ~one link delay apart per node.
const STEP_NS: u64 = 10_000;
/// Delivery latency of the modelled link.
const DELAY_NS: u64 = 150_000;
/// The `WakeAt` deadline horizon (a few `d`).
const WAKE_NS: u64 = 2_000_000;

struct Harness<Q> {
    queue: Q,
    /// One pending deadline per node, rescheduled round-robin.
    wakes: Vec<TimerHandle>,
    now: u64,
    node: usize,
}

impl<Q: EventQueue<u64>> Harness<Q> {
    fn new(mut queue: Q, n: usize) -> Self {
        let wakes = (0..n)
            .map(|i| queue.insert(WAKE_NS + i as u64, i as u64))
            .collect();
        // Steady-state in-flight deliveries: one per node.
        for i in 0..n {
            queue.insert(DELAY_NS + i as u64 * STEP_NS, i as u64);
        }
        Harness {
            queue,
            wakes,
            now: 0,
            node: 0,
        }
    }

    /// One simulated dispatch: the node reschedules its deadline
    /// (cancel + reinsert — the stale-`WakeAt` pattern), a delivery is
    /// enqueued, and everything due is popped.
    fn step(&mut self) -> u64 {
        self.now += STEP_NS;
        self.node = (self.node + 1) % self.wakes.len();
        self.queue.cancel(self.wakes[self.node]);
        self.wakes[self.node] = self.queue.insert(self.now + WAKE_NS, self.node as u64);
        self.queue.insert(self.now + DELAY_NS, self.node as u64);
        let mut popped = 0;
        while self.queue.peek_due().is_some_and(|due| due <= self.now) {
            let e = self.queue.pop().expect("peeked");
            popped += e.payload;
        }
        popped
    }
}

fn bench_wheel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_hot_path/wheel");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut h = Harness::new(TimerWheel::for_span_hint(DELAY_NS), n);
            b.iter(|| black_box(h.step()));
        });
    }
    g.finish();
}

fn bench_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_hot_path/baseline_heap");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut h = Harness::new(ReferenceQueue::new(), n);
            b.iter(|| black_box(h.step()));
        });
    }
    g.finish();
}

/// Pure insert/pop throughput (no rescheduling): the delivery-only path.
fn bench_insert_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_hot_path/insert_pop");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::new("wheel", n), &n, |b, &n| {
            let mut q: TimerWheel<u64> = TimerWheel::for_span_hint(DELAY_NS);
            let mut now = 0u64;
            for i in 0..n as u64 {
                q.insert(DELAY_NS + i, i);
            }
            b.iter(|| {
                now += STEP_NS;
                q.insert(now + DELAY_NS, now);
                while q.peek_due().is_some_and(|due| due <= now) {
                    black_box(q.pop());
                }
            });
        });
        g.bench_with_input(BenchmarkId::new("heap", n), &n, |b, &n| {
            let mut q: ReferenceQueue<u64> = ReferenceQueue::new();
            let mut now = 0u64;
            for i in 0..n as u64 {
                q.insert(DELAY_NS + i, i);
            }
            b.iter(|| {
                now += STEP_NS;
                q.insert(now + DELAY_NS, now);
                while q.peek_due().is_some_and(|due| due <= now) {
                    black_box(q.pop());
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_wheel, bench_reference, bench_insert_pop);
criterion_main!(benches);
