//! Hot-path micro-benchmarks for the dense per-node state introduced by
//! the flat-state overhaul: `ArrivalLog::{record, prune,
//! distinct_in_window}` and `Engine::on_message` at n ∈ {4, 16, 64},
//! benchmarked **against the retained `BTreeMap` reference
//! implementation** so the baseline-vs-dense comparison is reproducible
//! from one binary. Collected numbers are committed in
//! `BENCH_store_hot_path.json` (regenerate with
//! `SSBYZ_BENCH_JSON=/tmp/b.json cargo bench --bench store_hot_path`).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ssbyz_core::engine::reference::ReferenceEngine;
use ssbyz_core::store::reference::ReferenceArrivalLog;
use ssbyz_core::store::ArrivalLog;
use ssbyz_core::{Engine, IaKind, Msg, Outbox, Params};
use ssbyz_types::{Duration, LocalTime, NodeId};

const SIZES: [usize; 3] = [4, 16, 64];

/// One steady-state protocol step against the dense log: record an
/// arrival, answer the 2d quorum-window query, prune on a cadence.
fn bench_arrival_log_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_hot_path/dense");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut log = ArrivalLog::new();
            let mut t = 0u64;
            // Steady state: every sender has a populated history.
            for i in 0..(n as u64 * 8) {
                log.record(
                    LocalTime::from_nanos(1 + i * 997),
                    NodeId::new((i % n as u64) as u32),
                );
            }
            b.iter(|| {
                t += 1_000;
                log.record(
                    LocalTime::from_nanos(t),
                    NodeId::new((t / 1_000 % n as u64) as u32),
                );
                let count =
                    log.distinct_in_window(LocalTime::from_nanos(t), Duration::from_nanos(40_000));
                if t.is_multiple_of(64_000) {
                    log.prune(LocalTime::from_nanos(t), Duration::from_nanos(100_000));
                }
                black_box(count)
            });
        });
    }
    g.finish();
}

/// The identical workload against the `BTreeMap` reference model.
fn bench_arrival_log_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_hot_path/baseline_btreemap");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut log = ReferenceArrivalLog::new();
            let mut t = 0u64;
            for i in 0..(n as u64 * 8) {
                log.record(
                    LocalTime::from_nanos(1 + i * 997),
                    NodeId::new((i % n as u64) as u32),
                );
            }
            b.iter(|| {
                t += 1_000;
                log.record(
                    LocalTime::from_nanos(t),
                    NodeId::new((t / 1_000 % n as u64) as u32),
                );
                let count =
                    log.distinct_in_window(LocalTime::from_nanos(t), Duration::from_nanos(40_000));
                if t.is_multiple_of(64_000) {
                    log.prune(LocalTime::from_nanos(t), Duration::from_nanos(100_000));
                }
                black_box(count)
            });
        });
    }
    g.finish();
}

fn params_for(n: usize) -> Params {
    Params::from_d(n, (n - 1) / 3, Duration::from_millis(10), 0).unwrap()
}

/// Engine message throughput on the Initiator-Accept support path: every
/// delivery records an arrival and runs the windowed quorum evaluation.
/// Pooled-outbox dispatch: the steady state allocates nothing.
fn bench_engine_ia_support(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_hot_path/engine_ia_support");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut engine: Engine<u64> = Engine::new(NodeId::new(0), params_for(n));
            let mut ob: Outbox<u64> = Outbox::new();
            let mut t = 1_000_000_000u64;
            let mut sender = 0u32;
            let msg = Msg::Ia {
                kind: IaKind::Support,
                general: NodeId::new(1),
                value: Arc::new(7u64),
            };
            b.iter(|| {
                t += 10_000;
                sender = (sender + 1) % n as u32;
                engine.on_message_ref(LocalTime::from_nanos(t), NodeId::new(sender), &msg, &mut ob);
                black_box(ob.len())
            });
        });
    }
    g.finish();
}

/// The identical support workload against the retained Vec-returning
/// dispatch (`engine::reference`): fresh output + staging vectors per
/// call, same underlying state machines.
fn bench_engine_ia_support_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_hot_path/engine_ia_support_reference");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut engine: ReferenceEngine<u64> =
                ReferenceEngine::new(NodeId::new(0), params_for(n));
            let mut t = 1_000_000_000u64;
            let mut sender = 0u32;
            let msg = Msg::Ia {
                kind: IaKind::Support,
                general: NodeId::new(1),
                value: Arc::new(7u64),
            };
            b.iter(|| {
                t += 10_000;
                sender = (sender + 1) % n as u32;
                let outs =
                    engine.on_message_ref(LocalTime::from_nanos(t), NodeId::new(sender), &msg);
                black_box(outs.len())
            });
        });
    }
    g.finish();
}

/// Engine message throughput on the msgd-broadcast echo path: the dense
/// triplet table plus three arrival logs per triplet (pooled outbox).
fn bench_engine_bcast_echo(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_hot_path/engine_bcast_echo");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut engine: Engine<u64> = Engine::new(NodeId::new(0), params_for(n));
            let mut ob: Outbox<u64> = Outbox::new();
            let mut t = 1_000_000_000u64;
            let mut sender = 0u32;
            let msg = Msg::Bcast {
                kind: ssbyz_core::BcastKind::Echo,
                general: NodeId::new(1),
                broadcaster: NodeId::new(2),
                value: Arc::new(7u64),
                round: 1,
            };
            b.iter(|| {
                t += 10_000;
                sender = (sender + 1) % n as u32;
                engine.on_message_ref(LocalTime::from_nanos(t), NodeId::new(sender), &msg, &mut ob);
                black_box(ob.len())
            });
        });
    }
    g.finish();
}

/// The identical echo workload against the Vec-returning reference
/// dispatch.
fn bench_engine_bcast_echo_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_hot_path/engine_bcast_echo_reference");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut engine: ReferenceEngine<u64> =
                ReferenceEngine::new(NodeId::new(0), params_for(n));
            let mut t = 1_000_000_000u64;
            let mut sender = 0u32;
            let msg = Msg::Bcast {
                kind: ssbyz_core::BcastKind::Echo,
                general: NodeId::new(1),
                broadcaster: NodeId::new(2),
                value: Arc::new(7u64),
                round: 1,
            };
            b.iter(|| {
                t += 10_000;
                sender = (sender + 1) % n as u32;
                let outs =
                    engine.on_message_ref(LocalTime::from_nanos(t), NodeId::new(sender), &msg);
                black_box(outs.len())
            });
        });
    }
    g.finish();
}

/// A 1 KiB opaque payload: the heavyweight-value case the clone-free
/// `Arc<V>` emission path exists for. Deep-copying one of these per
/// emitted `Broadcast` — the pre-Arc behaviour — costs a 1 KiB memcpy
/// plus an allocation on every emitting call; the shared-handle path
/// costs a reference bump regardless of payload size.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct Blob([u8; 1024]);

impl Blob {
    fn new(tag: u8) -> Self {
        Blob([tag; 1024])
    }
}

/// The ia_support workload with a 1 KiB blob value: the steady-state
/// delivery is a content hash + interned table hit, and the periodic
/// approve resend emits `Msg<Blob>` broadcasts whose payload is the
/// interner slot's own `Arc` — zero blob copies per emission (pinned by
/// the clone-counter test in `crates/core/tests/alloc_free.rs`).
fn bench_engine_ia_support_heavy(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_hot_path/engine_ia_support_heavy_1k");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut engine: Engine<Blob> = Engine::new(NodeId::new(0), params_for(n));
            let mut ob: Outbox<Blob> = Outbox::new();
            let mut t = 1_000_000_000u64;
            let mut sender = 0u32;
            let msg = Msg::Ia {
                kind: IaKind::Support,
                general: NodeId::new(1),
                value: Arc::new(Blob::new(7)),
            };
            b.iter(|| {
                t += 10_000;
                sender = (sender + 1) % n as u32;
                engine.on_message_ref(LocalTime::from_nanos(t), NodeId::new(sender), &msg, &mut ob);
                black_box(ob.len())
            });
        });
    }
    g.finish();
}

/// The emission-dominated shape for the heavy value: every iteration
/// replays a full accepted echo wave (3 deliveries, the last of which
/// emits an accept, a decide relay carrying the blob, wake-ups and the
/// Decided event) against a fresh value each time. With per-emission
/// deep copies this scales with payload size; with `Arc` resolution it
/// does not.
fn bench_engine_heavy_accept_wave(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_hot_path/engine_heavy_accept_wave_1k");
    g.bench_function("n4", |b| {
        let mut engine: Engine<Blob> = Engine::new(NodeId::new(1), params_for(4));
        let mut ob: Outbox<Blob> = Outbox::new();
        let d = 10_000_000u64;
        let mut t = 1_000_000_000_000u64;
        let mut tag = 0u8;
        b.iter(|| {
            tag = tag.wrapping_add(1);
            let value = Arc::new(Blob::new(tag));
            engine
                .agreement_raw(NodeId::new(0))
                .corrupt_anchor(LocalTime::from_nanos(t - 6 * d));
            for s in [0u32, 2, 3] {
                t += 1_000;
                let msg = Msg::Bcast {
                    kind: ssbyz_core::BcastKind::Echo,
                    general: NodeId::new(0),
                    broadcaster: NodeId::new(2),
                    value: Arc::clone(&value),
                    round: 1,
                };
                engine.on_message_ref(LocalTime::from_nanos(t), NodeId::new(s), &msg, &mut ob);
            }
            // Post-return reset so the next wave starts fresh.
            t += 4 * d;
            engine.on_tick(LocalTime::from_nanos(t), &mut ob);
            t += 4 * d;
            engine.on_tick(LocalTime::from_nanos(t), &mut ob);
            black_box(&ob);
        });
    });
    g.finish();
}

/// The tentpole A/B: 1024 echo arrivals at n = 64 — sixteen
/// full-membership waves for a rotating handful of values — delivered
/// either one `on_message_ref` call at a time (64 triplet-table passes
/// per wave) or as sixteen `on_wave_ref` calls (one intern probe, one
/// bulk arrival record, one double evaluation per wave). The workload is
/// the steady duplicate-heavy state where the per-message path pays the
/// full lookup + window-query cost on every arrival.
fn bench_echo_wave_1k(c: &mut Criterion) {
    const N: usize = 64;
    const WAVES: usize = 16;
    let build_waves = || -> Vec<Vec<(NodeId, Arc<Msg<u64>>)>> {
        (0..WAVES)
            .map(|w| {
                let value = Arc::new(7 + (w % 4) as u64);
                (0..N)
                    .map(|s| {
                        (
                            NodeId::new(s as u32),
                            Arc::new(Msg::Bcast {
                                kind: ssbyz_core::BcastKind::Echo,
                                general: NodeId::new(1),
                                broadcaster: NodeId::new(2),
                                value: Arc::clone(&value),
                                round: 1,
                            }),
                        )
                    })
                    .collect()
            })
            .collect()
    };
    let mut g = c.benchmark_group("store_hot_path/echo_wave_1k");
    g.bench_function("per_message", |b| {
        let mut engine: Engine<u64> = Engine::new(NodeId::new(0), params_for(N));
        let mut ob: Outbox<u64> = Outbox::new();
        let waves = build_waves();
        let mut t = 1_000_000_000u64;
        b.iter(|| {
            for wave in &waves {
                t += 10_000;
                let now = LocalTime::from_nanos(t);
                for (s, m) in wave {
                    engine.on_message_ref(now, *s, m, &mut ob);
                }
            }
            black_box(ob.len())
        });
    });
    g.bench_function("coalesced", |b| {
        let mut engine: Engine<u64> = Engine::new(NodeId::new(0), params_for(N));
        let mut ob: Outbox<u64> = Outbox::new();
        let waves = build_waves();
        let mut t = 1_000_000_000u64;
        b.iter(|| {
            for wave in &waves {
                t += 10_000;
                engine.on_wave_ref(LocalTime::from_nanos(t), wave, &mut ob);
            }
            black_box(ob.len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_arrival_log_dense,
    bench_arrival_log_baseline,
    bench_engine_ia_support,
    bench_engine_ia_support_reference,
    bench_engine_bcast_echo,
    bench_engine_bcast_echo_reference,
    bench_engine_ia_support_heavy,
    bench_engine_heavy_accept_wave,
    bench_echo_wave_1k
);
criterion_main!(benches);
