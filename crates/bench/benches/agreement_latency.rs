//! E1 companion bench: wall-clock cost of simulating one full fault-free
//! agreement, by membership size. Tracks simulator + protocol throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssbyz_harness::experiments::run_correct_general;
use ssbyz_types::Duration;

fn bench_agreement(c: &mut Criterion) {
    let mut g = c.benchmark_group("agreement_latency");
    g.sample_size(10);
    for (n, f) in [(4usize, 1usize), (7, 2), (13, 4), (19, 6)] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &(n, f), |b, &(n, f)| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let (res, _) = run_correct_general(
                    n,
                    f,
                    seed,
                    Duration::from_micros(500),
                    Duration::from_millis(9),
                    1,
                );
                assert_eq!(res.decides_for(ssbyz_types::NodeId::new(0)).len(), n);
                res.metrics.sent
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_agreement);
criterion_main!(benches);
