//! Property-based tests (proptest) for the core data structures and
//! invariants: reference-model equivalence for the windowed stores,
//! clock-inversion laws, parameter derivations and engine fuzzing.

use proptest::prelude::*;
use ssbyz::core::store::{ArrivalLog, TimedVar};
use ssbyz::core::{Engine, IaKind, Msg, Outbox, Params};
use ssbyz::simnet::DriftClock;
use ssbyz::{Duration, LocalTime, NodeId, RealTime};

// ---------------------------------------------------------------------
// ArrivalLog vs a naive reference model.
// ---------------------------------------------------------------------

/// Naive model: a flat list of (sender, time) pairs with the same
/// retention/cap semantics.
#[derive(Default)]
struct NaiveLog {
    entries: Vec<(u32, u64)>,
}

impl NaiveLog {
    fn record(&mut self, now: u64, sender: u32) {
        if self.entries.iter().any(|&(s, t)| s == sender && t == now) {
            return;
        }
        self.entries.push((sender, now));
        // Cap per sender (keep most recent MAX_PER_SENDER).
        let mut times: Vec<u64> = self
            .entries
            .iter()
            .filter(|&&(s, _)| s == sender)
            .map(|&(_, t)| t)
            .collect();
        if times.len() > ArrivalLog::MAX_PER_SENDER {
            times.sort_unstable();
            let cutoff = times[times.len() - ArrivalLog::MAX_PER_SENDER];
            self.entries.retain(|&(s, t)| s != sender || t >= cutoff);
        }
    }

    fn prune(&mut self, now: u64, retention: u64) {
        self.entries
            .retain(|&(_, t)| t <= now && now - t <= retention);
    }

    fn distinct_in_window(&self, now: u64, window: u64) -> usize {
        let mut senders: Vec<u32> = self
            .entries
            .iter()
            .filter(|&&(_, t)| t <= now && now - t <= window)
            .map(|&(s, _)| s)
            .collect();
        senders.sort_unstable();
        senders.dedup();
        senders.len()
    }
}

proptest! {
    #[test]
    fn arrival_log_matches_reference(
        ops in prop::collection::vec((0u32..6, 1u64..10_000), 1..120),
        window in 1u64..5_000,
        retention in 5_000u64..20_000,
    ) {
        let mut log = ArrivalLog::new();
        let mut naive = NaiveLog::default();
        let mut now = 0u64;
        for (sender, dt) in ops {
            now += dt;
            log.record(LocalTime::from_nanos(now), NodeId::new(sender));
            naive.record(now, sender);
            prop_assert_eq!(
                log.distinct_in_window(LocalTime::from_nanos(now), Duration::from_nanos(window)),
                naive.distinct_in_window(now, window),
                "window count diverged at t={}", now
            );
        }
        log.prune(LocalTime::from_nanos(now), Duration::from_nanos(retention));
        naive.prune(now, retention);
        prop_assert_eq!(
            log.distinct_in_window(LocalTime::from_nanos(now), Duration::from_nanos(window)),
            naive.distinct_in_window(now, window)
        );
    }

    #[test]
    fn kth_latest_is_sound(
        ops in prop::collection::vec((0u32..8, 1u64..1_000), 1..80),
        window in 1u64..3_000,
        k in 1usize..6,
    ) {
        let mut log = ArrivalLog::new();
        let mut now = 0u64;
        for (sender, dt) in ops {
            now += dt;
            log.record(LocalTime::from_nanos(now), NodeId::new(sender));
        }
        let nw = LocalTime::from_nanos(now);
        let w = Duration::from_nanos(window);
        match log.kth_latest_in_window(nw, w, k) {
            Some(t) => {
                // The suffix [t, now] holds ≥ k distinct senders.
                let suffix = nw.since(t);
                prop_assert!(suffix <= w);
                prop_assert!(log.distinct_in_window(nw, suffix) >= k);
            }
            None => {
                prop_assert!(log.distinct_in_window(nw, w) < k);
            }
        }
    }
}

// ---------------------------------------------------------------------
// TimedVar vs a naive change-list model.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn timed_var_matches_reference(
        ops in prop::collection::vec((any::<bool>(), 1u64..500, 0u32..100), 1..60),
        query_back in 0u64..2_000,
    ) {
        let mut var: TimedVar<u32> = TimedVar::new();
        let mut naive: Vec<(u64, Option<u32>)> = Vec::new();
        let mut now = 10_000u64;
        for (set, dt, val) in ops {
            now += dt;
            if set {
                var.set(LocalTime::from_nanos(now), val);
                naive.push((now, Some(val)));
            } else {
                var.clear(LocalTime::from_nanos(now));
                if naive.last().map(|(_, v)| v.is_some()).unwrap_or(false) {
                    naive.push((now, None));
                }
            }
        }
        // Current value agrees.
        let expect_now = naive.last().and_then(|(_, v)| *v);
        prop_assert_eq!(var.get().copied(), expect_now);
        // Historical query agrees.
        let q = now - query_back.min(now - 1);
        let expect_at = naive
            .iter()
            .rev()
            .find(|(t, _)| *t <= q)
            .and_then(|(_, v)| *v);
        prop_assert_eq!(var.at(LocalTime::from_nanos(q)).copied(), expect_at);
    }
}

// ---------------------------------------------------------------------
// DriftClock inversion laws.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn clock_inversion_round_trips(
        boot_local in any::<u64>(),
        rate in -500_000i32..=500_000,
        offsets in prop::collection::vec(0u64..1_000_000_000_000, 1..20),
    ) {
        let clock = DriftClock::new(RealTime::ZERO, LocalTime::from_nanos(boot_local), rate);
        for off in offsets {
            let real = RealTime::from_nanos(off);
            let local = clock.local_at(real);
            let back = clock.real_of_local(local);
            // Timers never fire early, and round-trip error is bounded.
            prop_assert!(clock.local_at(back).is_at_or_after(local));
            prop_assert!(back.abs_diff(real) <= Duration::from_nanos(4));
        }
    }

    #[test]
    fn clock_is_monotone(
        boot_local in any::<u64>(),
        rate in -500_000i32..=500_000,
        a in 0u64..1_000_000_000,
        b in 0u64..1_000_000_000,
    ) {
        let clock = DriftClock::new(RealTime::ZERO, LocalTime::from_nanos(boot_local), rate);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let la = clock.local_at(RealTime::from_nanos(lo));
        let lb = clock.local_at(RealTime::from_nanos(hi));
        prop_assert!(lb.is_at_or_after(la));
    }
}

// ---------------------------------------------------------------------
// Params derivation invariants.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn params_invariants(n in 4usize..100, d_ns in 1u64..1_000_000_000) {
        let f = (n - 1) / 3;
        let params = Params::from_d(n, f, Duration::from_nanos(d_ns), 0).unwrap();
        let d = params.d();
        // Structural identities from paper §3.
        prop_assert_eq!(params.phi(), d * 8u64);
        prop_assert_eq!(params.delta_agr(), params.phi() * (2 * f as u64 + 1));
        prop_assert_eq!(params.delta_rmv(), params.delta_agr() + params.delta_0());
        prop_assert_eq!(params.delta_stb(), params.delta_reset() * 2u64);
        // Quorum sanity: weak quorum always contains a correct node.
        prop_assert!(params.weak_quorum() > f);
        prop_assert!(params.quorum() > params.weak_quorum() || f == 0);
        // Ordering of the horizon constants.
        prop_assert!(params.delta_0() < params.delta_rmv());
        prop_assert!(params.delta_rmv() < params.delta_v());
        prop_assert!(params.delta_reset() < params.delta_stb());
    }
}

// ---------------------------------------------------------------------
// Engine fuzzing: arbitrary message storms never panic and never forge
// an I-accept without correct-node participation.
// ---------------------------------------------------------------------

fn arb_msg(n: u32) -> impl Strategy<Value = Msg<u64>> {
    let node = move || (0..n).prop_map(NodeId::new);
    prop_oneof![
        (node(), 0u64..8).prop_map(|(general, value)| Msg::Initiator {
            general,
            value: std::sync::Arc::new(value),
        }),
        (node(), 0u64..8, 0usize..3).prop_map(|(general, value, k)| Msg::Ia {
            kind: IaKind::ALL[k],
            general,
            value: std::sync::Arc::new(value),
        }),
        (node(), node(), 0u64..8, 0usize..4, 0u32..4).prop_map(
            |(general, broadcaster, value, k, round)| Msg::Bcast {
                kind: ssbyz::core::BcastKind::ALL[k],
                general,
                broadcaster,
                value: std::sync::Arc::new(value),
                round,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn engine_survives_arbitrary_message_storm(
        msgs in prop::collection::vec((0u32..7, arb_msg(7), 1u64..100_000), 1..200),
    ) {
        let params = Params::from_d(7, 2, Duration::from_millis(10), 0).unwrap();
        let mut engine: Engine<u64> = Engine::new(NodeId::new(3), params);
        let mut ob = Outbox::new();
        let mut now = 1_000_000_000u64;
        for (sender, msg, dt) in msgs {
            now += dt;
            engine.on_message(LocalTime::from_nanos(now), NodeId::new(sender), msg, &mut ob);
        }
        engine.on_tick(LocalTime::from_nanos(now + 1_000_000), &mut ob);
    }

    /// Unforgeability at the engine level: if the only traffic comes from
    /// ≤ f distinct (Byzantine) senders, no I-accept can ever be issued —
    /// every quorum needs n − f > f distinct senders.
    #[test]
    fn no_accept_from_f_senders_alone(
        msgs in prop::collection::vec((0u32..2, arb_msg(7), 1u64..50_000), 1..300),
    ) {
        let params = Params::from_d(7, 2, Duration::from_millis(10), 0).unwrap();
        let mut engine: Engine<u64> = Engine::new(NodeId::new(6), params);
        let mut ob = Outbox::new();
        let mut now = 1_000_000_000u64;
        let mut accepted = false;
        for (sender, msg, dt) in msgs {
            now += dt;
            // Only nodes 0 and 1 (= f = 2 Byzantine) ever speak. Suppress
            // Initiator messages: they would make OUR engine participate,
            // which is allowed to support — but even then quorums cannot
            // form; keep them to make the test stronger.
            engine.on_message(LocalTime::from_nanos(now), NodeId::new(sender), msg, &mut ob);
            for o in ob.outputs() {
                if let ssbyz::Output::Event(ssbyz::Event::IAccepted { .. }) = o {
                    accepted = true;
                }
            }
        }
        prop_assert!(!accepted, "an I-accept formed from f senders alone");
    }
}
