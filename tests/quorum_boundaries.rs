//! Quorum-boundary scenarios: partial initiations probing exactly where
//! the support/approve quorums flip from fizzle to completion.

use ssbyz::adversary::PartialGeneral;
use ssbyz::harness::{checks, ScenarioBuilder, ScenarioConfig};
use ssbyz::{NodeId, RealTime};

fn run_partial(targets: usize, seed: u64) -> (Vec<u64>, usize) {
    let n = 7;
    let cfg = ScenarioConfig::new(n, 2).with_seed(seed);
    let params = cfg.params().unwrap();
    let recipients: Vec<NodeId> = (1..=targets as u32).map(NodeId::new).collect();
    let mut b = ScenarioBuilder::new(cfg).byzantine(Box::new(PartialGeneral::new(
        500,
        recipients,
        params.d() * 2u64,
    )));
    for _ in 1..n {
        b = b.correct();
    }
    let mut sc = b.build();
    sc.run_until(RealTime::ZERO + params.delta_agr() * 2u64 + params.d() * 40u64);
    let res = sc.result();
    checks::check_byzantine_general_run(&res, NodeId::new(0))
        .assert_ok(&format!("partial to {targets}"));
    (
        res.decided_values(NodeId::new(0)),
        res.decides_for(NodeId::new(0)).len(),
    )
}

/// Initiation reaching only a weak quorum of nodes: a strong support
/// quorum can never assemble, so no approve is sent and nobody decides.
#[test]
fn below_strong_quorum_fizzles() {
    for targets in [1usize, 2, 3] {
        let (decided, _) = run_partial(targets, targets as u64);
        assert!(
            decided.is_empty(),
            "{targets} receivers must not reach agreement, got {decided:?}"
        );
    }
}

/// Initiation reaching n − f or more correct nodes: the wave completes
/// and — by the relay property — *every* correct node decides, including
/// the ones that never saw the Initiator message.
#[test]
fn at_strong_quorum_completes_everywhere() {
    for targets in [5usize, 6] {
        let (decided, deciders) = run_partial(targets, 40 + targets as u64);
        assert_eq!(decided, vec![500], "{targets} receivers");
        assert_eq!(
            deciders, 6,
            "{targets} receivers: all six correct nodes decide (relay)"
        );
    }
}

/// The boundary case (4 = n − f − 1 receivers): the support quorum
/// cannot reach n − f = 5, so the initiation must fizzle.
#[test]
fn one_below_strong_quorum_fizzles() {
    let (decided, _) = run_partial(4, 99);
    assert!(
        decided.is_empty(),
        "4 receivers < strong quorum, got {decided:?}"
    );
}
