//! Cross-crate integration tests: the paper's §3 properties checked on
//! full simulated runs across a matrix of memberships and seeds.

use ssbyz::harness::experiments::{run_correct_general, slack};
use ssbyz::harness::{checks, ScenarioBuilder, ScenarioConfig};
use ssbyz::{Duration, NodeId, RealTime};

/// Validity + Agreement + Timeliness for every legal (n, f) up to 16 and
/// several seeds each.
#[test]
fn battery_matrix_correct_general() {
    for (n, f) in [(4, 1), (5, 1), (7, 2), (9, 2), (10, 3), (13, 4), (16, 5)] {
        for seed in 0..3 {
            let (res, t0) = run_correct_general(
                n,
                f,
                seed,
                Duration::from_micros(500),
                Duration::from_millis(9),
                1_000 + seed,
            );
            checks::check_correct_general_run(
                &res,
                NodeId::new(0),
                1_000 + seed,
                t0,
                slack(res.params.d()),
            )
            .assert_ok(&format!("n={n}, f={f}, seed={seed}"));
        }
    }
}

/// Nodes decide even when the actual network runs at the worst-case bound.
#[test]
fn battery_at_worst_case_delay() {
    let (res, t0) = run_correct_general(
        7,
        2,
        0,
        Duration::from_millis(8),
        Duration::from_millis(9),
        5,
    );
    checks::check_correct_general_run(&res, NodeId::new(0), 5, t0, slack(res.params.d()))
        .assert_ok("worst-case delays");
}

/// Nodes decide when the network is nearly instantaneous (message-driven
/// fast path).
#[test]
fn battery_at_tiny_delay() {
    let (res, t0) = run_correct_general(
        7,
        2,
        0,
        Duration::from_micros(5),
        Duration::from_micros(50),
        6,
    );
    checks::check_correct_general_run(&res, NodeId::new(0), 6, t0, slack(res.params.d()))
        .assert_ok("tiny delays");
    // And the decisions land far sooner than 4d.
    let last = res
        .decides_for(NodeId::new(0))
        .iter()
        .map(|r| r.real_at)
        .max()
        .unwrap();
    assert!(last.saturating_since(t0) < res.params.d());
}

/// A partition that silences f nodes entirely: the remaining correct
/// quorum still reaches agreement.
#[test]
fn partition_of_f_nodes_tolerated() {
    let cfg = ScenarioConfig::new(7, 2).with_seed(5);
    let params = cfg.params().unwrap();
    let off = params.d() * 4u64;
    let mut b = ScenarioBuilder::new(cfg).correct_general(off, 9);
    for _ in 1..7 {
        b = b.correct();
    }
    let mut sc = b.build();
    // Nodes 5 and 6 are isolated in both directions for the whole run —
    // they count against the fault budget.
    let forever = RealTime::from_nanos(u64::MAX);
    for isolated in [5u32, 6] {
        for other in 0..7u32 {
            sc.sim_mut()
                .block_link(NodeId::new(isolated), NodeId::new(other), forever);
            sc.sim_mut()
                .block_link(NodeId::new(other), NodeId::new(isolated), forever);
        }
    }
    sc.run_until(RealTime::ZERO + params.delta_agr() + params.d() * 30u64);
    let res = sc.result();
    let deciders: Vec<NodeId> = res
        .decides_for(NodeId::new(0))
        .iter()
        .map(|r| r.node)
        .collect();
    for node in 0..5u32 {
        assert!(
            deciders.contains(&NodeId::new(node)),
            "connected node {node} must decide; got {deciders:?}"
        );
    }
    assert_eq!(res.decided_values(NodeId::new(0)), vec![9]);
}

/// Timeliness 1(d): anchors precede decisions and the running time is
/// bounded by Δ_agr for every scenario in the matrix.
#[test]
fn anchors_precede_decisions_everywhere() {
    for seed in 0..5 {
        let (res, _) = run_correct_general(
            10,
            3,
            seed,
            Duration::from_micros(500),
            Duration::from_millis(9),
            3,
        );
        checks::check_anchor_precedes_decision(&res, NodeId::new(0)).assert_ok("1(d)");
        checks::check_termination(&res, NodeId::new(0), slack(res.params.d()))
            .assert_ok("termination");
    }
}

/// Determinism: identical seeds yield identical decision transcripts.
#[test]
fn runs_are_deterministic() {
    let transcript = |seed| {
        let (res, _) = run_correct_general(
            7,
            2,
            seed,
            Duration::from_micros(500),
            Duration::from_millis(9),
            2,
        );
        res.decisions
            .iter()
            .map(|r| (r.node, r.value, r.real_at))
            .collect::<Vec<_>>()
    };
    assert_eq!(transcript(9), transcript(9));
    assert_ne!(transcript(9), transcript(10));
}
