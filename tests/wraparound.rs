//! Local-clock wrap-around: the paper assumes local time may wrap after a
//! transient fault and requires the protocol to measure only intervals.
//! These tests run full agreements with boot readings placed so that the
//! counters wrap *mid-protocol*.

use ssbyz::harness::experiments::slack;
use ssbyz::harness::{checks, ScenarioBuilder, ScenarioConfig};
use ssbyz::{LocalTime, NodeId, RealTime};

/// All clocks wrap during the agreement window.
#[test]
fn agreement_across_wrap_on_all_clocks() {
    let cfg = ScenarioConfig::new(4, 1).with_seed(17);
    let params = cfg.params().unwrap();
    let off = params.d() * 4u64;
    // Boot readings so the counter wraps ~2d into the run — right in the
    // middle of the Initiator-Accept wave.
    let wrap_at = params.d() * 6u64;
    let boots: Vec<LocalTime> = (0..4)
        .map(|i| LocalTime::from_nanos(0u64.wrapping_sub(wrap_at.as_nanos() + i as u64 * 1_000)))
        .collect();
    let mut sc = ScenarioBuilder::new(cfg)
        .correct_general(off, 88)
        .correct()
        .correct()
        .correct()
        .with_boot_readings(boots)
        .build();
    sc.run_until(RealTime::ZERO + params.delta_agr() + params.d() * 30u64);
    let res = sc.result();
    assert_eq!(res.decided_values(NodeId::new(0)), vec![88]);
    assert_eq!(res.decides_for(NodeId::new(0)).len(), 4);
    checks::check_agreement(&res, NodeId::new(0)).assert_ok("agreement across wrap");
    checks::check_decision_skew(
        &res,
        NodeId::new(0),
        params.d() * 2u64 + slack(params.d()),
        params.d() + slack(params.d()),
    )
    .assert_ok("skew across wrap");
}

/// Only some clocks wrap (mixed wrap phase among correct nodes).
#[test]
fn agreement_with_mixed_wrap_phases() {
    let cfg = ScenarioConfig::new(7, 2).with_seed(23);
    let params = cfg.params().unwrap();
    let off = params.d() * 4u64;
    let wrap_soon = LocalTime::from_nanos(0u64.wrapping_sub(params.d().as_nanos() * 5));
    let boots = vec![
        wrap_soon,
        LocalTime::from_nanos(500),
        wrap_soon + params.d(),
        LocalTime::from_nanos(123_456_789),
        wrap_soon - params.d() * 2u64,
        LocalTime::ZERO,
        LocalTime::from_nanos(u64::MAX / 2),
    ];
    let mut b = ScenarioBuilder::new(cfg).correct_general(off, 99);
    for _ in 1..7 {
        b = b.correct();
    }
    let mut sc = b.with_boot_readings(boots).build();
    sc.run_until(RealTime::ZERO + params.delta_agr() + params.d() * 30u64);
    let res = sc.result();
    assert_eq!(res.decided_values(NodeId::new(0)), vec![99]);
    assert_eq!(res.decides_for(NodeId::new(0)).len(), 7);
}

/// Repeated agreements straddling the wrap: guards (`last(G)`,
/// `last(G, m)`) must survive their owner's clock wrapping.
#[test]
fn recurrent_agreements_across_wrap() {
    let cfg = ScenarioConfig::new(4, 1).with_seed(31);
    let params = cfg.params().unwrap();
    let d = params.d();
    let gap = params.delta_0() + d * 4u64;
    let offs = [d * 4u64, d * 4u64 + gap];
    // Wrap lands between the two agreements.
    let wrap_at = d * 4u64 + gap / 2;
    let boots: Vec<LocalTime> = (0..4)
        .map(|i| LocalTime::from_nanos(0u64.wrapping_sub(wrap_at.as_nanos() + i as u64 * 7_000)))
        .collect();
    let mut sc = ScenarioBuilder::new(cfg)
        .correct_with_initiations(vec![(offs[0], 1), (offs[1], 2)])
        .correct()
        .correct()
        .correct()
        .with_boot_readings(boots)
        .build();
    sc.run_until(RealTime::ZERO + offs[1] + params.delta_agr() + d * 30u64);
    let res = sc.result();
    let mut decided = res.decided_values(NodeId::new(0));
    decided.sort_unstable();
    assert_eq!(decided, vec![1, 2], "both agreements complete across wrap");
    checks::check_agreement(&res, NodeId::new(0)).assert_ok("wrap recurrent");
}
