//! Property-based fault-injection tests: across randomized mid-run fault
//! schedules — always including at least one live state scramble — the
//! system re-converges and a probe agreement passes the full property
//! battery within the paper's stabilization bound (Corollary 5).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssbyz::core::corrupt::ScrambleConfig;
use ssbyz::harness::experiments::{filter_window, slack};
use ssbyz::harness::faults::{campaign_settle, Fault, FaultSchedule};
use ssbyz::harness::{checks, ScenarioBuilder, ScenarioConfig};
use ssbyz::{Duration, NodeId, RealTime};

const PROBE_VALUE: u64 = 42;

/// Builds a randomized burst at `at`: one guaranteed scramble plus an
/// independent coin-flip mix of crash, healing partition, forward clock
/// jump and link congestion — all targeting non-probe nodes (1..n) and
/// all over (outages ended, cuts healed, congestion drained) within
/// `settle / 2`, so only *state* residue is left for the probe to face.
fn random_burst(
    rng: &mut StdRng,
    n: usize,
    at: RealTime,
    settle: Duration,
    d: Duration,
) -> FaultSchedule {
    let victim = |rng: &mut StdRng| NodeId::new(rng.gen_range(1..n as u32));
    let mut s = FaultSchedule::new().at(
        at,
        Fault::Scramble {
            node: victim(rng),
            cfg: ScrambleConfig::default(),
        },
    );
    if rng.gen_ratio(1, 2) {
        let down_for = Duration::from_nanos(rng.gen_range(1..(settle / 2).as_nanos()));
        s = s.at(
            at + d,
            Fault::Crash {
                node: victim(rng),
                down_for,
            },
        );
    }
    if rng.gen_ratio(1, 2) {
        let cut = victim(rng);
        let rest: Vec<NodeId> = (0..n as u32)
            .map(NodeId::new)
            .filter(|v| *v != cut)
            .collect();
        s = s.at(
            at,
            Fault::Partition {
                groups: vec![rest, vec![cut]],
                heal_after: Some(Duration::from_nanos(
                    rng.gen_range(1..(settle / 3).as_nanos()),
                )),
            },
        );
    }
    if rng.gen_ratio(1, 3) {
        s = s.at(
            at + d * 2u64,
            Fault::ClockJump {
                node: victim(rng),
                jump: Duration::from_nanos(rng.gen_range(0..(d * 50u64).as_nanos())),
                new_rate_ppm: None,
            },
        );
    }
    if rng.gen_ratio(1, 3) {
        s = s.at(
            at,
            Fault::DelayInflation {
                num: 2,
                den: 1,
                lasts: settle / 4,
            },
        );
    }
    s
}

/// Runs one random schedule against an (n=4, f=1) membership and checks
/// the probe agreement. Returns the probe battery plus the latest
/// correct-node decision offset from the burst.
fn run_one(seed: u64) -> (checks::Violations, Duration, ssbyz::core::Params) {
    let n = 4;
    let cfg = ScenarioConfig::new(n, 1).with_seed(seed);
    let params = cfg.params().expect("valid");
    let d = params.d();
    let settle = campaign_settle(&params);
    let burst_at = RealTime::ZERO + d * 10u64;
    let probe_off = d * 10u64 + settle;

    let mut b = ScenarioBuilder::new(cfg).correct_general(probe_off, PROBE_VALUE);
    for _ in 1..n {
        b = b.correct();
    }
    let mut sc = b.build();
    let clock0 = sc.sim().clock(NodeId::new(0));
    let t0 = clock0.real_of_local(clock0.local_at(RealTime::ZERO) + probe_off);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_5EED);
    let schedule = random_burst(&mut rng, n, burst_at, settle, d);
    sc.run_until(burst_at);
    sc.run_with_faults(&schedule, t0 + params.delta_agr() + d * 14u64, &mut rng);

    let res = sc.result();
    let probe = filter_window(&res, t0 - d * 2u64, t0 + params.delta_agr() + d * 10u64);
    let battery =
        checks::check_correct_general_run(&probe, NodeId::new(0), PROBE_VALUE, t0, slack(d));
    let latest = probe
        .decisions
        .iter()
        .filter(|r| res.correct.contains(&r.node))
        .map(|r| r.real_at.saturating_since(burst_at))
        .max()
        .unwrap_or(Duration::MAX);
    (battery, latest, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn random_fault_schedules_reconverge(seed in 0u64..1_000_000) {
        let (battery, latest, params) = run_one(seed);
        prop_assert!(
            battery.is_ok(),
            "seed {seed}: probe violated properties: {:?}",
            battery.0
        );
        // Paper bound: from the burst, the system stabilizes within
        // Δ_stb and the next agreement returns within Δ_agr of its
        // invocation — our probe (settle < Δ_stb, decisions ≤ 4d after
        // t0) sits strictly inside that envelope.
        prop_assert!(
            latest <= params.delta_stb() + params.delta_agr(),
            "seed {seed}: latest decision {latest} exceeds Δ_stb + Δ_agr"
        );
    }
}

/// Same seed ⇒ identical run, including the fault injections (the whole
/// campaign pipeline is replayable).
#[test]
fn fault_schedules_are_deterministic() {
    let a = run_one(77);
    let b = run_one(77);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
