//! Byzantine-behavior integration tests beyond the harness suites:
//! garbage floods, forgers, staggered generals and combined attacks.

use ssbyz::adversary::{EchoForger, GarbageNode, IaForger, SilentNode, StaggeredGeneral};
use ssbyz::harness::experiments::{e8_unforgeability, slack};
use ssbyz::harness::{checks, ScenarioBuilder, ScenarioConfig};
use ssbyz::{NodeId, RealTime};

/// f garbage-flooding nodes cannot stop a correct General's agreement.
#[test]
fn garbage_flood_does_not_block_agreement() {
    for seed in 0..3 {
        let cfg = ScenarioConfig::new(7, 2).with_seed(seed);
        let params = cfg.params().unwrap();
        let off = params.d() * 6u64;
        let mut b = ScenarioBuilder::new(cfg).correct_general(off, 31);
        for i in 1..7 {
            if i >= 5 {
                b = b.byzantine(Box::new(GarbageNode::new(
                    params.d() / 4,
                    vec![1, 2, 3, 31, 99],
                    params.max_round(),
                )));
            } else {
                b = b.correct();
            }
        }
        let mut sc = b.build();
        sc.run_until(RealTime::ZERO + params.delta_agr() * 2u64 + params.d() * 40u64);
        let res = sc.result();
        assert_eq!(
            res.decided_values(NodeId::new(0)),
            vec![31],
            "seed {seed}: garbage flood must not corrupt the decision"
        );
        assert_eq!(res.decides_for(NodeId::new(0)).len(), 5);
        checks::check_agreement(&res, NodeId::new(0)).assert_ok("agreement under flood");
    }
}

/// Unforgeability battery across memberships (E8).
#[test]
fn unforgeability_battery() {
    for (n, f) in [(4, 1), (7, 2), (10, 3)] {
        let row = e8_unforgeability(n, f, 3);
        assert_eq!(row.forged_accepts, 0, "n={n}: forged I-accepts");
        assert_eq!(row.forged_decisions, 0, "n={n}: forged decisions");
        assert_eq!(
            row.clean_completions, row.runs,
            "n={n}: the legit agreement must still complete"
        );
    }
}

/// A staggered General (same value, spread over 10d) must never split
/// agreement; with a spread defeating the support windows it fizzles.
#[test]
fn staggered_general_consistent() {
    for spread_d in [1u64, 5, 10, 20] {
        let cfg = ScenarioConfig::new(7, 2).with_seed(spread_d);
        let params = cfg.params().unwrap();
        let mut b = ScenarioBuilder::new(cfg).byzantine(Box::new(StaggeredGeneral::new(
            300,
            params.d() * 2u64,
            params.d() * spread_d,
        )));
        for _ in 1..7 {
            b = b.correct();
        }
        let mut sc = b.build();
        sc.run_until(RealTime::ZERO + params.delta_agr() * 2u64 + params.d() * 60u64);
        let res = sc.result();
        checks::check_byzantine_general_run(&res, NodeId::new(0))
            .assert_ok(&format!("staggered spread {spread_d}d"));
        let values = res.decided_values(NodeId::new(0));
        assert!(
            values.is_empty() || values == vec![300],
            "spread {spread_d}d: decided {values:?}"
        );
    }
}

/// Combined attack at full budget: one IA forger + one echo forger
/// (f = 2) against a correct General — validity must still hold.
#[test]
fn combined_forgers_at_full_budget() {
    let cfg = ScenarioConfig::new(7, 2).with_seed(4);
    let params = cfg.params().unwrap();
    let off = params.d() * 6u64;
    let mut b = ScenarioBuilder::new(cfg)
        // Node 0: forges IA stages for a phantom initiation by node 1.
        .byzantine(Box::new(IaForger::new(NodeId::new(1), 666, params.d() / 2)));
    for i in 1..7 {
        if i == 1 {
            b = b.correct_general(off, 44);
        } else if i == 6 {
            b = b.byzantine(Box::new(EchoForger::new(
                NodeId::new(1),
                NodeId::new(2),
                666,
                1,
                params.d() / 2,
            )));
        } else {
            b = b.correct();
        }
    }
    let mut sc = b.build();
    sc.run_until(RealTime::ZERO + params.delta_agr() * 2u64 + params.d() * 40u64);
    let res = sc.result();
    checks::check_validity(&res, NodeId::new(1), 44).assert_ok("validity under forgers");
    assert!(res.iaccepts.iter().all(|r| r.value != 666));
}

/// With all f faulty nodes silent the agreement completes at the same
/// speed as fault-free (the silent nodes are simply not needed).
#[test]
fn silent_budget_does_not_slow_validity_path() {
    let cfg_clean = ScenarioConfig::new(10, 3).with_seed(9);
    let params = cfg_clean.params().unwrap();
    let off = params.d() * 4u64;
    let run = |silent: usize| {
        let cfg = ScenarioConfig::new(10, 3).with_seed(9);
        let mut b = ScenarioBuilder::new(cfg).correct_general(off, 8);
        for i in 1..10 {
            if i >= 10 - silent {
                b = b.byzantine(Box::new(SilentNode));
            } else {
                b = b.correct();
            }
        }
        let mut sc = b.build();
        sc.run_until(RealTime::ZERO + params.delta_agr() + params.d() * 30u64);
        let res = sc.result();
        res.decides_for(NodeId::new(0))
            .iter()
            .map(|r| r.real_at)
            .max()
            .expect("decisions exist")
    };
    let clean = run(0);
    let degraded = run(3);
    // Both are on the fast R-path; allow generous jitter of 2d.
    let diff = clean.abs_diff(degraded);
    assert!(
        diff <= params.d() * 2u64,
        "silent faults shifted completion by {diff}"
    );
    let _ = slack(params.d());
}
