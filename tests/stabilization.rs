//! Self-stabilization integration tests: convergence from arbitrary
//! state, decay of corrupted state without a reboot, and storm survival.

use ssbyz::core::corrupt::ScrambleConfig;
use ssbyz::core::{Engine, Outbox, Params};
use ssbyz::harness::experiments::{e6_convergence, filter_window, slack};
use ssbyz::harness::{checks, ScenarioBuilder, ScenarioConfig};
use ssbyz::simnet::StormConfig;
use ssbyz::{Duration, LocalTime, NodeId, RealTime};

/// The headline claim (Corollary 5): from arbitrary state + storm, the
/// system converges within Δ_stb and the next agreement is fully correct.
#[test]
fn convergence_matrix() {
    for (n, f) in [(4, 1), (7, 2)] {
        let row = e6_convergence(n, f, 4, 90);
        assert_eq!(
            row.converged, row.runs,
            "n={n}, f={f}: {:?}",
            row.violations
        );
        assert!(row.settle <= row.delta_stb, "settle must be within Δ_stb");
    }
}

/// Scrambled state decays via cleanup alone: after 2·Δ_rmv of quiet ticks
/// a scrambled engine accepts a fresh agreement exactly like a clean one.
#[test]
fn scrambled_engine_decays_without_reboot() {
    let cfg = ScenarioConfig::new(4, 1).with_seed(21);
    let params = cfg.params().unwrap();
    let quiet = params.delta_rmv() * 2u64 + params.d() * 20u64;
    let off = quiet + params.d() * 4u64;
    let mut b = ScenarioBuilder::new(cfg).scrambled_general(off, 77);
    for _ in 1..4 {
        b = b.scrambled();
    }
    let mut sc = b.build();
    let t0 = sc
        .sim()
        .clock(NodeId::new(0))
        .real_of_local(sc.sim().clock(NodeId::new(0)).local_at(RealTime::ZERO) + off);
    sc.run_until(t0 + params.delta_agr() + params.d() * 30u64);
    let res = sc.result();
    let probe = filter_window(
        &res,
        t0 - params.d() * 2u64,
        t0 + params.delta_agr() + params.d() * 10u64,
    );
    checks::check_correct_general_run(&probe, NodeId::new(0), 77, t0, slack(params.d()))
        .assert_ok("post-decay agreement");
}

/// During the storm anything goes; the checkers only apply afterwards.
/// This test verifies the system doesn't wedge even under a long, heavy
/// storm with spurious traffic.
#[test]
fn survives_long_heavy_storm() {
    let cfg = ScenarioConfig::new(4, 1).with_seed(33);
    let params = cfg.params().unwrap();
    let storm_len = params.delta_rmv() * 2u64;
    let storm_end = RealTime::ZERO + storm_len;
    let off = storm_len + params.delta_stb();
    let mut b = ScenarioBuilder::new(cfg)
        .storm(StormConfig::heavy(
            storm_end,
            params.d() * 8u64,
            params.d() / 8,
        ))
        .scrambled_general(off, 3);
    for _ in 1..4 {
        b = b.scrambled();
    }
    let mut sc = b.build();
    let t0 = sc
        .sim()
        .clock(NodeId::new(0))
        .real_of_local(sc.sim().clock(NodeId::new(0)).local_at(RealTime::ZERO) + off);
    sc.run_until(t0 + params.delta_agr() + params.d() * 40u64);
    let res = sc.result();
    let probe = filter_window(
        &res,
        t0 - params.d() * 2u64,
        t0 + params.delta_agr() + params.d() * 10u64,
    );
    checks::check_validity(&probe, NodeId::new(0), 3).assert_ok("post-storm validity");
    assert!(
        res.metrics.injected > 0,
        "the storm must have injected junk"
    );
}

/// Scramble is deterministic per seed and the scrambled engine keeps
/// functioning (no panic across heavy tick/cleanup cycles).
#[test]
fn scramble_decays_to_dormant() {
    let params = Params::from_d(4, 1, Duration::from_millis(10), 0).unwrap();
    let mut engine: Engine<u64> = Engine::new(NodeId::new(1), params);
    let mut word = 0x1234_5678_9abc_def0u64;
    let mut entropy = move || {
        word ^= word << 13;
        word ^= word >> 7;
        word ^= word << 17;
        word
    };
    let now = LocalTime::from_nanos(500_000_000_000);
    engine.scramble(
        now,
        &ScrambleConfig {
            generals: 4,
            values_per_general: 4,
            ..ScrambleConfig::default()
        },
        &mut entropy,
        &mut |e| ssbyz::core::Entropy::below(e, 16),
    );
    // Tick well past every decay horizon.
    let mut t = now;
    let mut ob = Outbox::new();
    for _ in 0..600 {
        t += params.d();
        engine.on_tick(t, &mut ob);
    }
    // All bogus I-accept candidates and guards must be gone.
    for g in 0..4u32 {
        if let Some(ia) = engine.ia(NodeId::new(g)) {
            assert!(!ia.any_i_value(), "i_values must decay for G={g}");
            assert!(ia.last_g().is_none(), "last(G) must decay for G={g}");
        }
        if let Some(agr) = engine.agreement(NodeId::new(g)) {
            assert!(agr.tau_g().is_none(), "anchors must decay for G={g}");
            assert!(!agr.has_returned(), "fake returns must decay for G={g}");
        }
    }
}

/// Transient node failure mid-agreement: a node goes down during the wave
/// and comes back — the survivors (still ≥ n − f) decide; the system
/// remains usable afterwards.
#[test]
fn node_downtime_during_agreement() {
    let cfg = ScenarioConfig::new(7, 2).with_seed(8);
    let params = cfg.params().unwrap();
    let off = params.d() * 4u64;
    let mut b = ScenarioBuilder::new(cfg).correct_general(off, 55);
    for _ in 1..7 {
        b = b.correct();
    }
    let mut sc = b.build();
    // Nodes 5, 6 sleep through the agreement window.
    let wake = RealTime::ZERO + params.delta_agr() * 2u64;
    sc.sim_mut().set_down_until(NodeId::new(5), wake);
    sc.sim_mut().set_down_until(NodeId::new(6), wake);
    sc.run_until(RealTime::ZERO + params.delta_agr() + params.d() * 30u64);
    let res = sc.result();
    let deciders = res.decides_for(NodeId::new(0)).len();
    assert!(deciders >= 5, "the 5 awake nodes decide; got {deciders}");
    assert_eq!(res.decided_values(NodeId::new(0)), vec![55]);
}
