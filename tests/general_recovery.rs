//! The `[IG3]` cycle end to end: a General whose initiation fails (it was
//! partitioned from everyone) detects the failure, backs off for
//! `Δ_reset`, and succeeds afterwards.

use ssbyz::harness::{ScenarioBuilder, ScenarioConfig};
use ssbyz::{NodeId, RealTime};

#[test]
fn failed_initiation_backs_off_then_recovers() {
    let cfg = ScenarioConfig::new(4, 1).with_seed(14);
    let params = cfg.params().unwrap();
    let d = params.d();
    let off1 = d * 4u64;
    // Second attempt well before the backoff expires (must be refused),
    // third attempt after Δ_reset (+ the failure detection delay).
    let off2 = off1 + params.delta_0() + d * 2u64;
    let off3 = off1 + d * 4u64 + params.delta_reset() + params.delta_0() + d * 4u64;
    let mut sc = ScenarioBuilder::new(cfg)
        .correct_with_initiations(vec![(off1, 1), (off2, 2), (off3, 3)])
        .correct()
        .correct()
        .correct()
        .build();
    // Cut ALL of the General's outgoing links during the first initiation
    // window so nothing it sends arrives (its own loopback included).
    let heal_at = RealTime::ZERO + off1 + d * 2u64;
    for dst in 0..4u32 {
        sc.sim_mut()
            .block_link(NodeId::new(0), NodeId::new(dst), heal_at);
    }
    sc.run_until(RealTime::ZERO + off3 + params.delta_agr() + d * 40u64);
    let res = sc.result();

    // The first initiation failed and was detected ([IG3]).
    assert!(
        res.failures
            .iter()
            .any(|(n, v, _)| *n == NodeId::new(0) && *v == 1),
        "the isolated initiation must be detected as failed: {:?}",
        res.failures
    );
    // The second was refused by the backoff.
    assert!(
        res.refused
            .iter()
            .any(|(n, v, _)| *n == NodeId::new(0) && *v == 2),
        "the mid-backoff initiation must be refused: {:?}",
        res.refused
    );
    // The third succeeds at all four nodes.
    assert_eq!(res.decided_values(NodeId::new(0)), vec![3]);
    assert_eq!(res.decides_for(NodeId::new(0)).len(), 4);
}
