//! Wall-clock runtime integration: the identical engine code on real
//! threads, including concurrent Generals and forged-traffic injection.

use ssbyz::core::Params;
use ssbyz::runtime::{Cluster, RuntimeConfig};
use ssbyz::{Duration, Event, Msg, NodeId};

fn quick_params() -> Params {
    Params::from_d(4, 1, Duration::from_millis(20), 0).unwrap()
}

#[test]
fn concurrent_generals_wall_clock() {
    let cluster: Cluster<u64> = Cluster::spawn(quick_params(), RuntimeConfig::default());
    std::thread::sleep(std::time::Duration::from_millis(30));
    cluster.initiate(NodeId::new(0), 1).unwrap();
    cluster.initiate(NodeId::new(1), 2).unwrap();
    assert_eq!(
        cluster.wait_for_decisions(8, std::time::Duration::from_secs(5)),
        Ok(()),
        "both agreements complete: {:?}",
        cluster.decisions()
    );
    let events = cluster.events();
    for g in [NodeId::new(0), NodeId::new(1)] {
        let values: Vec<u64> = events
            .iter()
            .filter_map(|e| match &e.event {
                Event::Decided { general, value, .. } if *general == g => Some(**value),
                _ => None,
            })
            .collect();
        assert_eq!(values.len(), 4, "General {g}");
        assert!(values.windows(2).all(|w| w[0] == w[1]), "General {g}");
    }
    cluster.shutdown();
}

#[test]
fn forged_ia_traffic_cannot_forge_acceptance() {
    let cluster: Cluster<u64> = Cluster::spawn(quick_params(), RuntimeConfig::default());
    std::thread::sleep(std::time::Duration::from_millis(20));
    // One Byzantine identity (node 3) floods forged IA stages for a
    // phantom initiation by node 2.
    for _ in 0..50 {
        for kind in ssbyz::core::IaKind::ALL {
            for dst in 0..4 {
                cluster
                    .inject(
                        NodeId::new(3),
                        NodeId::new(dst),
                        Msg::Ia {
                            kind,
                            general: NodeId::new(2),
                            value: std::sync::Arc::new(666),
                        },
                    )
                    .unwrap();
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    std::thread::sleep(std::time::Duration::from_millis(200));
    assert!(
        cluster.decisions().is_empty(),
        "forged IA traffic from one identity must not produce decisions"
    );
    cluster.shutdown();
}

#[test]
fn decisions_carry_timing() {
    let cluster: Cluster<u64> = Cluster::spawn(quick_params(), RuntimeConfig::default());
    std::thread::sleep(std::time::Duration::from_millis(30));
    let before = cluster.elapsed();
    cluster.initiate(NodeId::new(0), 5).unwrap();
    cluster
        .wait_for_decisions(4, std::time::Duration::from_secs(5))
        .unwrap();
    for e in cluster.events() {
        if matches!(e.event, Event::Decided { .. }) {
            assert!(e.elapsed >= before, "decision precedes initiation");
        }
    }
    cluster.shutdown();
}
