//! Recurrent and concurrent agreements: repeated initiations by one
//! General, different Generals back to back, and fully concurrent
//! instances by distinct Generals.

use ssbyz::harness::{checks, ScenarioBuilder, ScenarioConfig};
use ssbyz::{NodeId, RealTime};

/// One General runs three agreements in sequence (respecting Δ0); each
/// decides its own value and the executions never bleed into each other.
#[test]
fn three_sequential_agreements_one_general() {
    let cfg = ScenarioConfig::new(4, 1).with_seed(2);
    let params = cfg.params().unwrap();
    let d = params.d();
    let gap = params.delta_0() + d * 4u64;
    let offs = [d * 4u64, d * 4u64 + gap, d * 4u64 + gap * 2u64];
    let mut sc = ScenarioBuilder::new(cfg)
        .correct_with_initiations(vec![(offs[0], 1), (offs[1], 2), (offs[2], 3)])
        .correct()
        .correct()
        .correct()
        .build();
    sc.run_until(RealTime::ZERO + offs[2] + params.delta_agr() + d * 30u64);
    let res = sc.result();
    let clusters = checks::executions(&res, NodeId::new(0));
    assert_eq!(clusters.len(), 3, "three distinct executions");
    checks::check_agreement(&res, NodeId::new(0)).assert_ok("per-execution agreement");
    let mut decided: Vec<u64> = res.decided_values(NodeId::new(0));
    decided.sort_unstable();
    assert_eq!(decided, vec![1, 2, 3]);
    // Every execution is complete: 4 deciders each.
    for cluster in clusters {
        assert_eq!(cluster.len(), 4);
    }
}

/// Two different Generals initiate *concurrently*: their instances are
/// independent and both decide.
#[test]
fn concurrent_generals_are_independent() {
    let cfg = ScenarioConfig::new(7, 2).with_seed(13);
    let params = cfg.params().unwrap();
    let d = params.d();
    let mut b = ScenarioBuilder::new(cfg)
        .correct_general(d * 4u64, 10) // node 0 proposes 10
        .correct_general(d * 5u64, 20); // node 1 proposes 20, 1d later
    for _ in 2..7 {
        b = b.correct();
    }
    let mut sc = b.build();
    sc.run_until(RealTime::ZERO + params.delta_agr() + d * 40u64);
    let res = sc.result();
    assert_eq!(res.decided_values(NodeId::new(0)), vec![10]);
    assert_eq!(res.decided_values(NodeId::new(1)), vec![20]);
    assert_eq!(res.decides_for(NodeId::new(0)).len(), 7);
    assert_eq!(res.decides_for(NodeId::new(1)).len(), 7);
    checks::check_agreement(&res, NodeId::new(0)).assert_ok("G=0");
    checks::check_agreement(&res, NodeId::new(1)).assert_ok("G=1");
}

/// All n nodes act as Generals at once (the pulse-synchronization
/// workload): every instance decides at every node.
#[test]
fn all_nodes_as_generals() {
    let cfg = ScenarioConfig::new(4, 1).with_seed(6);
    let params = cfg.params().unwrap();
    let d = params.d();
    let mut b = ScenarioBuilder::new(cfg);
    for i in 0..4u64 {
        b = b.correct_general(d * 4u64 + d * i / 2, 100 + i);
    }
    let mut sc = b.build();
    sc.run_until(RealTime::ZERO + params.delta_agr() + d * 40u64);
    let res = sc.result();
    for g in 0..4u32 {
        let general = NodeId::new(g);
        assert_eq!(
            res.decided_values(general),
            vec![100 + u64::from(g)],
            "General {g}"
        );
        assert_eq!(res.decides_for(general).len(), 4, "General {g}");
    }
}

/// Too-frequent initiations are refused locally (IG1) and the network
/// never sees them.
#[test]
fn rapid_reinitiation_is_refused() {
    let cfg = ScenarioConfig::new(4, 1).with_seed(3);
    let params = cfg.params().unwrap();
    let d = params.d();
    // Second initiation 2d after the first: violates Δ0 = 13d.
    let mut sc = ScenarioBuilder::new(cfg)
        .correct_with_initiations(vec![(d * 4u64, 1), (d * 6u64, 2)])
        .correct()
        .correct()
        .correct()
        .build();
    sc.run_until(RealTime::ZERO + params.delta_agr() + d * 30u64);
    let res = sc.result();
    assert_eq!(res.decided_values(NodeId::new(0)), vec![1]);
    assert_eq!(res.refused.len(), 1, "the second initiation is refused");
    assert_eq!(res.refused[0].1, 2);
}
