//! # `ssbyz` — Self-stabilizing Byzantine Agreement
//!
//! A comprehensive Rust implementation of *"Self-stabilizing Byzantine
//! Agreement"* (Ariel Daliot & Danny Dolev, PODC 2006): Byzantine
//! agreement that converges from an **arbitrary state** — corrupted
//! variables, bogus in-flight messages, no synchrony among the correct
//! nodes — once the system is coherent (`n > 3f`, bounded message delay),
//! while tolerating the permanent presence of Byzantine faults.
//!
//! This facade re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `ssbyz-core` | `Initiator-Accept`, `msgd-broadcast`, `ss-Byz-Agree`, the per-node [`Engine`] |
//! | [`simnet`] | `ssbyz-simnet` | deterministic simulator: drifting clocks, bounded-delay links, fault storms |
//! | [`adversary`] | `ssbyz-adversary` | Byzantine strategies & transient-fault tooling |
//! | [`baseline`] | `ssbyz-baseline` | time-driven lock-step comparator (TPS-87 style) |
//! | [`pulse`] | `ssbyz-pulse` | pulse synchronization built atop the agreement |
//! | [`runtime`] | `ssbyz-runtime` | threaded wall-clock cluster |
//! | [`wire`] | `ssbyz-wire` | authenticated binary codec, MAC'd framing, TCP readiness-loop reactor |
//! | [`harness`] | `ssbyz-harness` | scenarios, property checkers, experiment drivers |
//!
//! ## Quickstart (deterministic simulation)
//!
//! ```
//! use ssbyz::harness::{ScenarioBuilder, ScenarioConfig};
//! use ssbyz::{Duration, NodeId, RealTime};
//!
//! // 7 nodes tolerating 2 Byzantine; node 0 is a correct General that
//! // proposes value 42 shortly after boot.
//! let cfg = ScenarioConfig::new(7, 2).with_seed(1);
//! let params = cfg.params()?;
//! let mut scenario = ScenarioBuilder::new(cfg)
//!     .correct_general(params.d() * 4u64, 42)
//!     .correct().correct().correct().correct().correct().correct()
//!     .build();
//! scenario.run_until(RealTime::ZERO + params.delta_agr() + params.d() * 30u64);
//! let result = scenario.result();
//! assert_eq!(result.decided_values(NodeId::new(0)), vec![42]);
//! assert_eq!(result.decides_for(NodeId::new(0)).len(), 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Quickstart (threads, wall clock)
//!
//! ```no_run
//! use ssbyz::core::Params;
//! use ssbyz::runtime::{Cluster, RuntimeConfig};
//! use ssbyz::{Duration, NodeId};
//!
//! let params = Params::from_d(4, 1, Duration::from_millis(20), 0)?;
//! let cluster: Cluster<u64> = Cluster::spawn(params, RuntimeConfig::default());
//! cluster.initiate(NodeId::new(0), 7)?;
//! cluster.wait_for_decisions(4, std::time::Duration::from_secs(5))?;
//! cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ssbyz_adversary as adversary;
pub use ssbyz_baseline as baseline;
pub use ssbyz_core as core;
pub use ssbyz_harness as harness;
pub use ssbyz_pulse as pulse;
pub use ssbyz_runtime as runtime;
pub use ssbyz_simnet as simnet;
pub use ssbyz_wire as wire;

pub use ssbyz_core::{Engine, Event, Msg, Output, Params};
pub use ssbyz_types::{
    ConfigError, DenseNodeMap, Duration, LocalTime, NodeBitSet, NodeId, RealTime, Value,
};
