//! Pulse synchronization built atop ss-Byz-Agree (the paper's §1
//! extension): nodes with arbitrary boot clock readings converge onto a
//! common periodic beat whose skew is a small multiple of `d`.
//!
//! ```text
//! cargo run --release --example pulse_sync
//! ```

use ssbyz::pulse::run_pulse;
use ssbyz::Duration;

fn main() {
    let d = Duration::from_millis(10);
    let n = 7;
    let f = 2;
    println!("running {n} pulse nodes (f = {f}, d = {d}) for 5 cycles ...\n");
    let result = run_pulse(n, f, d, 5, 42);

    for (i, wave) in result.waves.iter().enumerate() {
        let mark = if wave.size() == n { "full" } else { "partial" };
        println!(
            "wave {:>2}: {} nodes fired within {} ({mark})",
            i + 1,
            wave.size(),
            wave.skew()
        );
    }
    let full = result.full_waves(n);
    println!(
        "\n{} full waves; max pulse skew across them: {} (d = {d})",
        full.len(),
        result.max_skew(n)
    );
    assert!(!full.is_empty(), "pulses must synchronize");
}
