//! A two-faced Byzantine General tries to split the correct nodes between
//! two values. The Agreement property holds regardless: either nobody
//! decides, or everybody decides the same value.
//!
//! ```text
//! cargo run --example byzantine_general
//! ```

use ssbyz::adversary::TwoFacedGeneral;
use ssbyz::harness::{checks, ScenarioBuilder, ScenarioConfig};
use ssbyz::{NodeId, RealTime};

fn main() {
    for (label, side_a) in [
        ("split 3/3", (1..4).map(NodeId::new).collect::<Vec<_>>()),
        ("split 1/5", vec![NodeId::new(1)]),
        ("split 5/1", (1..6).map(NodeId::new).collect::<Vec<_>>()),
    ] {
        let cfg = ScenarioConfig::new(7, 2).with_seed(7);
        let params = cfg.params().expect("n > 3f");
        let mut builder = ScenarioBuilder::new(cfg).byzantine(Box::new(TwoFacedGeneral::new(
            100, // value shown to side A
            200, // value shown to side B
            side_a.clone(),
            &params,
        )));
        for _ in 1..7 {
            builder = builder.correct();
        }
        let mut scenario = builder.build();
        scenario.run_until(RealTime::ZERO + params.delta_agr() * 2u64 + params.d() * 40u64);
        let result = scenario.result();

        let decided = result.decided_values(NodeId::new(0));
        let deciders = result.decides_for(NodeId::new(0)).len();
        let aborts = result.aborts_for(NodeId::new(0)).len();
        println!("two-faced General, {label}:");
        println!("  decided values: {decided:?} ({deciders} deciders, {aborts} aborts)");
        checks::check_byzantine_general_run(&result, NodeId::new(0))
            .assert_ok("agreement must hold");
        match decided.len() {
            0 => println!("  ⇒ the attack fizzled: no correct node decided\n"),
            1 => println!(
                "  ⇒ all correct nodes that returned a value agree on {}\n",
                decided[0]
            ),
            _ => unreachable!("checker would have caught a split"),
        }
    }
}
