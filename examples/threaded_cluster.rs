//! The same engine, on real threads and wall-clock time: a 4-node cluster
//! over crossbeam channels with injected link delays, running two
//! agreements back to back.
//!
//! ```text
//! cargo run --example threaded_cluster
//! ```

use ssbyz::core::Params;
use ssbyz::runtime::{Cluster, RuntimeConfig};
use ssbyz::{Duration, NodeId};

fn main() {
    // d = 20 ms keeps the wall-clock demo quick (Δ0 = 260 ms).
    let params = Params::from_d(4, 1, Duration::from_millis(20), 0).expect("n > 3f");
    let cluster: Cluster<String> = Cluster::spawn(params, RuntimeConfig::default());
    std::thread::sleep(std::time::Duration::from_millis(30));

    println!("initiating agreement #1 from node 0 ...");
    cluster
        .initiate(NodeId::new(0), "attack at dawn".to_string())
        .expect("cluster alive");
    cluster
        .wait_for_decisions(4, std::time::Duration::from_secs(5))
        .expect("agreement #1 completes");
    for (node, value) in cluster.decisions() {
        println!("  {node} decided {value:?}");
    }

    // Respect Δ0 before the next initiation by the same General.
    std::thread::sleep(std::time::Duration::from_millis(300));
    println!("initiating agreement #2 from node 2 ...");
    cluster
        .initiate(NodeId::new(2), "retreat at dusk".to_string())
        .expect("cluster alive");
    cluster
        .wait_for_decisions(8, std::time::Duration::from_secs(5))
        .expect("agreement #2 completes");
    for e in cluster.events() {
        if let ssbyz::Event::Decided { general, value, .. } = &e.event {
            println!(
                "  [{:?}] {} decided {value:?} (General {general})",
                e.elapsed, e.node
            );
        }
    }
    println!("elapsed: {:?}", cluster.elapsed());
    cluster.shutdown();
    println!("clean shutdown ✓");
}
