//! Fault-injection campaign: repeated mid-run fault bursts — crash
//! churn, healing partitions, state scrambles, adaptive storms — each
//! followed by a probe agreement that must pass the full property
//! battery. Measures time-to-stabilize and containment radius per burst
//! and writes `BENCH_stabilization.json` (deterministic per seed, byte
//! identical across re-runs).
//!
//! ```text
//! cargo run --release --example fault_campaign            # full grid
//! cargo run --release --example fault_campaign -- --smoke # CI smoke
//! ```

use std::fmt::Write as _;

use ssbyz::harness::faults::{run_campaign, CampaignFamily, StabilizationReport};
use ssbyz::Duration;

const SEED: u64 = 1;

fn fmt_opt(d: Option<Duration>) -> String {
    d.map_or_else(|| "null".into(), |d| d.as_nanos().to_string())
}

fn render_row(out: &mut String, report: &StabilizationReport) {
    let _ = write!(
        out,
        "    {{\n      \"family\": \"{}\",\n      \"n\": {},\n      \"f\": {},\n      \"seed\": {},\n      \"d_ns\": {},\n      \"delta_agr_ns\": {},\n      \"delta_stb_ns\": {},\n      \"settle_ns\": {},\n      \"max_stabilization_ns\": {},\n      \"max_containment\": {},\n      \"stabilized\": {},\n      \"bursts\": [\n",
        report.family,
        report.n,
        report.f,
        report.seed,
        report.d.as_nanos(),
        report.delta_agr.as_nanos(),
        report.delta_stb.as_nanos(),
        report.settle.as_nanos(),
        fmt_opt(report.max_stabilization()),
        report.max_containment(),
        report.stabilized(),
    );
    for (i, b) in report.bursts.iter().enumerate() {
        let sep = if i + 1 == report.bursts.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            out,
            "        {{\"burst_at_ns\": {}, \"probe_t0_ns\": {}, \"first_decision_ns\": {}, \"all_correct_ns\": {}, \"containment_radius\": {}, \"wrong_outputs\": {}, \"violations\": {}}}{sep}",
            b.burst_at.as_nanos(),
            b.probe_t0.as_nanos(),
            fmt_opt(b.first_decision_after),
            fmt_opt(b.all_correct_after),
            b.containment_radius,
            b.wrong_outputs,
            b.violations.len(),
        );
    }
    let _ = write!(out, "      ]\n    }}");
}

fn run_cell(n: usize, f: usize, family: CampaignFamily, bursts: usize) -> StabilizationReport {
    let report = run_campaign(n, f, SEED, family, bursts);
    println!(
        "  {:<20} n={:<3} f={:<3} bursts={}  stabilize≤{:<12} containment≤{}  {}",
        report.family,
        report.n,
        report.f,
        report.bursts.len(),
        report
            .max_stabilization()
            .map_or_else(|| "∞".into(), |d| format!("{d}")),
        report.max_containment(),
        if report.stabilized() { "✓" } else { "✗" },
    );
    for v in report.violations() {
        println!("      violation: {v}");
    }
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    if smoke {
        // CI smoke: one crash-churn burst and one mid-run scramble burst
        // at n = 7 must stabilize with zero safety violations.
        println!("fault-campaign smoke (n=7, seed={SEED}):");
        let churn = run_cell(7, 2, CampaignFamily::CrashChurn, 1);
        let scramble = run_cell(7, 2, CampaignFamily::RepeatedScrambles, 1);
        for report in [&churn, &scramble] {
            assert!(
                report.stabilized(),
                "{} must stabilize: {:?}",
                report.family,
                report.violations()
            );
            assert!(
                report.max_stabilization().is_some(),
                "stabilization time must be finite"
            );
        }
        println!("smoke passed: finite stabilization, zero violations ✓");
        return;
    }

    println!("fault-injection campaign grid (seed={SEED}):");
    let mut rows: Vec<StabilizationReport> = Vec::new();
    for (n, f) in [(7usize, 2usize), (16, 5), (64, 21)] {
        for family in CampaignFamily::ALL {
            rows.push(run_cell(n, f, family, 2));
        }
    }

    let stabilized = rows.iter().filter(|r| r.stabilized()).count();
    println!("\n{stabilized}/{} cells stabilized", rows.len());
    assert_eq!(
        stabilized,
        rows.len(),
        "every campaign cell must stabilize; violations: {:?}",
        rows.iter()
            .flat_map(StabilizationReport::violations)
            .collect::<Vec<_>>()
    );

    let mut out = String::from("{\n  \"seed\": ");
    let _ = write!(out, "{SEED},\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        render_row(&mut out, row);
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_stabilization.json", &out).expect("write BENCH_stabilization.json");
    println!("wrote BENCH_stabilization.json");
}
