//! Fault-injection campaign: repeated mid-run fault bursts — crash
//! churn, healing partitions, state scrambles, adaptive storms — each
//! bracketed by a companion agreement the burst disrupts and a probe
//! agreement that must pass the full property battery. Measures
//! time-to-stabilize, disruption decay and containment radius per burst
//! and writes `BENCH_stabilization.json` (deterministic per seed, byte
//! identical across re-runs). The `n = 256` cell runs on the sharded
//! engine; its assumed δ is auto-scaled when the membership outgrows
//! the processing bound the default δ models (and says so).
//!
//! ```text
//! cargo run --release --example fault_campaign            # full grid
//! cargo run --release --example fault_campaign -- --smoke # CI smoke
//! ```

use std::fmt::Write as _;

use ssbyz::harness::faults::{
    clamped_delta, run_campaign_spec, CampaignFamily, CampaignSpec, StabilizationReport,
};
use ssbyz::simnet::SimMode;
use ssbyz::Duration;

const SEED: u64 = 1;

fn fmt_opt(d: Option<Duration>) -> String {
    d.map_or_else(|| "null".into(), |d| d.as_nanos().to_string())
}

fn engine_name(mode: SimMode) -> String {
    match mode {
        SimMode::Sequential => "sequential".into(),
        SimMode::Sharded(t) => format!("sharded-{t}"),
    }
}

fn render_row(out: &mut String, report: &StabilizationReport) {
    let _ = write!(
        out,
        "    {{\n      \"family\": \"{}\",\n      \"engine\": \"{}\",\n      \"n\": {},\n      \"f\": {},\n      \"seed\": {},\n      \"d_ns\": {},\n      \"delta_agr_ns\": {},\n      \"delta_stb_ns\": {},\n      \"settle_ns\": {},\n      \"max_stabilization_ns\": {},\n      \"max_containment\": {},\n      \"stabilized\": {},\n      \"bursts\": [\n",
        report.family,
        engine_name(report.sim_mode),
        report.n,
        report.f,
        report.seed,
        report.d.as_nanos(),
        report.delta_agr.as_nanos(),
        report.delta_stb.as_nanos(),
        report.settle.as_nanos(),
        fmt_opt(report.max_stabilization()),
        report.max_containment(),
        report.stabilized(),
    );
    for (i, b) in report.bursts.iter().enumerate() {
        let sep = if i + 1 == report.bursts.len() {
            ""
        } else {
            ","
        };
        // Absolute instants carry the `_ns` suffix alone; spans since
        // the burst carry `_after_ns` (the old `first_decision_ns` name
        // made a span look comparable to the absolute `probe_t0_ns`).
        let _ = writeln!(
            out,
            "        {{\"burst_at_ns\": {}, \"probe_t0_ns\": {}, \"companion_t0_ns\": {}, \"first_decision_after_ns\": {}, \"all_correct_after_ns\": {}, \"disrupted_first_after_ns\": {}, \"disrupted_all_after_ns\": {}, \"disrupted_decides\": {}, \"disrupted_aborts\": {}, \"containment_radius\": {}, \"wrong_outputs\": {}, \"violations\": {}}}{sep}",
            b.burst_at.as_nanos(),
            b.probe_t0.as_nanos(),
            b.companion_t0.as_nanos(),
            fmt_opt(b.first_decision_after),
            fmt_opt(b.all_correct_after),
            fmt_opt(b.disrupted_first_after),
            fmt_opt(b.disrupted_all_after),
            b.disrupted_decides,
            b.disrupted_aborts,
            b.containment_radius,
            b.wrong_outputs,
            b.violations.len(),
        );
    }
    let _ = write!(out, "      ]\n    }}");
}

/// Builds the cell spec, clamping δ when `n` outgrows what the engine's
/// execution lanes can honestly process under the default bound.
fn spec_for(
    n: usize,
    f: usize,
    family: CampaignFamily,
    bursts: usize,
    mode: SimMode,
) -> CampaignSpec {
    let workers = match mode {
        SimMode::Sequential => 1,
        SimMode::Sharded(t) => t.max(1),
    };
    let (delta, scaled) = clamped_delta(n, workers);
    let mut spec = CampaignSpec::new(n, f, SEED, family, bursts);
    spec.sim_mode = mode;
    if scaled {
        eprintln!(
            "  note: n={n} on {workers} lane(s) outgrows the default δ's processing bound; scaling δ to {delta}"
        );
        spec.delta = Some(delta);
    }
    spec
}

fn run_cell(spec: &CampaignSpec) -> StabilizationReport {
    let report = run_campaign_spec(spec);
    println!(
        "  {:<20} {:<12} n={:<4} f={:<3} bursts={}  stabilize≤{:<12} containment≤{}  {}",
        report.family,
        engine_name(report.sim_mode),
        report.n,
        report.f,
        report.bursts.len(),
        report
            .max_stabilization()
            .map_or_else(|| "∞".into(), |d| format!("{d}")),
        report.max_containment(),
        if report.stabilized() { "✓" } else { "✗" },
    );
    for v in report.violations() {
        println!("      violation: {v}");
    }
    report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    if smoke {
        // CI smoke: one crash-churn burst and one mid-run scramble burst
        // at n = 7, plus one sharded crash-churn burst at n = 256, must
        // all stabilize with zero safety violations.
        println!("fault-campaign smoke (seed={SEED}):");
        let churn = run_cell(&spec_for(
            7,
            2,
            CampaignFamily::CrashChurn,
            1,
            SimMode::Sequential,
        ));
        let scramble = run_cell(&spec_for(
            7,
            2,
            CampaignFamily::RepeatedScrambles,
            1,
            SimMode::Sequential,
        ));
        let big = run_cell(&spec_for(
            256,
            85,
            CampaignFamily::CrashChurn,
            1,
            SimMode::Sharded(4),
        ));
        for report in [&churn, &scramble, &big] {
            assert!(
                report.stabilized(),
                "{} (n={}) must stabilize: {:?}",
                report.family,
                report.n,
                report.violations()
            );
            assert!(
                report.max_stabilization().is_some(),
                "stabilization time must be finite"
            );
        }
        println!("smoke passed: finite stabilization, zero violations ✓");
        return;
    }

    println!("fault-injection campaign grid (seed={SEED}):");
    let mut rows: Vec<StabilizationReport> = Vec::new();
    for (n, f) in [(7usize, 2usize), (16, 5), (64, 21)] {
        for family in CampaignFamily::ALL {
            rows.push(run_cell(&spec_for(n, f, family, 2, SimMode::Sequential)));
        }
    }
    // The n = 256 whole-sim cell rides the sharded engine — out of reach
    // for the sequential wheel in reasonable wall-clock.
    rows.push(run_cell(&spec_for(
        256,
        85,
        CampaignFamily::CrashChurn,
        1,
        SimMode::Sharded(4),
    )));

    let stabilized = rows.iter().filter(|r| r.stabilized()).count();
    println!("\n{stabilized}/{} cells stabilized", rows.len());
    assert_eq!(
        stabilized,
        rows.len(),
        "every campaign cell must stabilize; violations: {:?}",
        rows.iter()
            .flat_map(StabilizationReport::violations)
            .collect::<Vec<_>>()
    );

    let mut out = String::from("{\n  \"seed\": ");
    let _ = write!(out, "{SEED},\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        render_row(&mut out, row);
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_stabilization.json", &out).expect("write BENCH_stabilization.json");
    println!("wrote BENCH_stabilization.json");
}
