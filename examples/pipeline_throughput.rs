//! Slot-pipeline sustained-throughput bench: decisions per second under
//! a continuous client stream at n = 7 / 16 / 64, with and without
//! receiver-side wave coalescing. Time is simulated, so every number is
//! deterministic per seed and the output is byte-identical across
//! re-runs. Writes `BENCH_pipeline.json`.
//!
//! ```text
//! cargo run --release --example pipeline_throughput            # full grid
//! cargo run --release --example pipeline_throughput -- --smoke # CI smoke
//! ```

use std::fmt::Write as _;

use ssbyz::core::{PipeEvent, PipelineConfig};
use ssbyz::harness::{PipelineScenario, ScenarioConfig, Workload};
use ssbyz::simnet::WaveMode;
use ssbyz::{Duration, NodeId, RealTime};

const SEED: u64 = 1;
const WINDOW: u64 = 8;

struct Row {
    n: usize,
    f: usize,
    mode: &'static str,
    values: usize,
    completed: bool,
    span_ns: u64,
    slots_per_sec: f64,
    commits_per_sec: f64,
}

fn mode_name(mode: WaveMode) -> &'static str {
    match mode {
        WaveMode::Coalesced => "coalesced",
        WaveMode::PerMessage => "per-message",
    }
}

/// Runs one grid cell: a saturating stream of `values` client values in
/// batches of 8 every 10 ms against an (n, f) cluster — faster than the
/// window drains, so the measured rate is the pipeline's, not the
/// client's — measured from the epoch to the last commit anywhere in
/// the cluster.
fn run_cell(n: usize, f: usize, mode: WaveMode, values: usize) -> Row {
    let cfg = ScenarioConfig::new(n, f).with_seed(SEED);
    let params = cfg.params().expect("valid n/f");
    let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params).with_window(WINDOW);
    let workload = Workload::steady(values, 8, Duration::from_millis(10));
    let mut s = PipelineScenario::new(&cfg, &pipe_cfg, workload, mode);
    // Generous deadline: the workload arrives within (values / 8) * 10
    // ms; the queue and window tail drain well before this.
    s.run_until(RealTime::from_nanos(60_000_000_000));

    let logs = s.committed_logs();
    let decided = logs.iter().map(Vec::len).min().unwrap_or(0);
    let completed = decided == values;
    let last_commit = s
        .sim()
        .observations()
        .iter()
        .filter(|o| matches!(o.event, PipeEvent::Committed { .. }))
        .map(|o| o.real)
        .max()
        .unwrap_or(RealTime::ZERO);
    let span_ns = last_commit.as_nanos().max(1);
    let secs = span_ns as f64 / 1e9;
    Row {
        n,
        f,
        mode: mode_name(mode),
        values,
        completed,
        span_ns,
        slots_per_sec: decided as f64 / secs,
        commits_per_sec: s.total_commits() as f64 / secs,
    }
}

fn print_row(r: &Row) {
    println!(
        "  n={:<3} f={:<3} {:<12} values={:<3} span={:>7.1}ms  {:>7.1} slots/s  {:>8.1} commits/s  {}",
        r.n,
        r.f,
        r.mode,
        r.values,
        r.span_ns as f64 / 1e6,
        r.slots_per_sec,
        r.commits_per_sec,
        if r.completed { "✓" } else { "✗" },
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    if smoke {
        // CI smoke: a short stream at n = 7 must fully commit on every
        // node in both wave modes.
        println!("pipeline-throughput smoke (n=7, seed={SEED}):");
        for mode in [WaveMode::Coalesced, WaveMode::PerMessage] {
            let row = run_cell(7, 2, mode, 12);
            print_row(&row);
            assert!(row.completed, "{} stream must fully commit", row.mode);
        }
        println!("smoke passed: full stream committed in both wave modes ✓");
        return;
    }

    println!("slot-pipeline throughput grid (seed={SEED}, window={WINDOW}):");
    let mut rows: Vec<Row> = Vec::new();
    for (n, f, values) in [(7usize, 2usize, 48usize), (16, 5, 48), (64, 21, 24)] {
        for mode in [WaveMode::Coalesced, WaveMode::PerMessage] {
            let row = run_cell(n, f, mode, values);
            print_row(&row);
            assert!(
                row.completed,
                "n={} {} stream must fully commit",
                row.n, row.mode
            );
            rows.push(row);
        }
    }

    let mut out = String::from("{\n  \"seed\": ");
    let _ = write!(out, "{SEED},\n  \"window\": {WINDOW},\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"n\": {}, \"f\": {}, \"wave_mode\": \"{}\", \"values\": {}, \"completed\": {}, \"span_ns\": {}, \"slots_per_sec\": {:.1}, \"commits_per_sec\": {:.1}}}{sep}",
            r.n, r.f, r.mode, r.values, r.completed, r.span_ns, r.slots_per_sec, r.commits_per_sec,
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_pipeline.json", &out).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
}
