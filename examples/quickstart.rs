//! Quickstart: one fault-free agreement among 7 simulated nodes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ssbyz::harness::{ScenarioBuilder, ScenarioConfig};
use ssbyz::{NodeId, RealTime};

fn main() {
    // 7 nodes, tolerating f = 2 Byzantine. Default timing: δ = 9 ms,
    // π = 1 ms, ρ = 100 ppm ⇒ d ≈ 10 ms, Φ = 8d = 80 ms.
    let cfg = ScenarioConfig::new(7, 2).with_seed(42);
    let params = cfg.params().expect("n > 3f");
    println!("protocol constants:");
    println!("  d       = {}", params.d());
    println!("  Φ       = {}", params.phi());
    println!("  Δ_agr   = {}", params.delta_agr());
    println!("  Δ_stb   = {}", params.delta_stb());

    // Node 0 is a correct General proposing value 42 at local offset 4d.
    let mut scenario = ScenarioBuilder::new(cfg)
        .correct_general(params.d() * 4u64, 42)
        .correct()
        .correct()
        .correct()
        .correct()
        .correct()
        .correct()
        .build();

    scenario.run_until(RealTime::ZERO + params.delta_agr() + params.d() * 30u64);
    let result = scenario.result();

    println!("\ndecisions for General n0:");
    for rec in result.decides_for(NodeId::new(0)) {
        println!(
            "  {} decided {:?} at {:?}  (anchor rt(τ_G) = {:?})",
            rec.node,
            rec.value.expect("decision"),
            rec.real_at,
            rec.tau_g_real
        );
    }
    let values = result.decided_values(NodeId::new(0));
    assert_eq!(values, vec![42], "validity: everyone decides the proposal");
    println!("\nmessages sent: {}", result.metrics.sent);
    println!("all {} correct nodes agree on 42 ✓", result.correct.len());
}
