//! Wire-transport throughput bench: wall-clock slots/s and commits/s
//! for the slot pipeline at n = 7 / 16, on the in-process channel
//! router and on the authenticated TCP loopback mesh. Unlike the
//! simulated benches this measures real threads, real sockets, and real
//! MAC arithmetic — numbers vary run to run with the host. Writes
//! `BENCH_wire.json`.
//!
//! ```text
//! cargo run --release --example wire_throughput            # full grid
//! cargo run --release --example wire_throughput -- --smoke # CI smoke
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use ssbyz::core::{Params, PipelineConfig};
use ssbyz::runtime::{PipelineCluster, RuntimeConfig};
use ssbyz::wire::{TcpTransport, Transport, WireConfig};
use ssbyz::{Duration, NodeId};

const SEED: u64 = 1;
const WINDOW: u64 = 8;

struct Row {
    n: usize,
    f: usize,
    transport: &'static str,
    d_ms: u64,
    values: usize,
    completed: bool,
    span_ns: u64,
    slots_per_sec: f64,
    commits_per_sec: f64,
}

fn params_for(n: usize, f: usize, d_ms: u64) -> Params {
    Params::from_d(n, f, Duration::from_millis(d_ms), 0).expect("valid n/f")
}

/// Drives `values` submissions through a freshly spawned cluster and
/// measures wall-clock span from first submission to last commit.
fn run_cell<T: Transport<u64>>(
    transport: &'static str,
    n: usize,
    f: usize,
    d_ms: u64,
    values: usize,
    cluster: PipelineCluster<u64, T>,
) -> Row {
    // Let the mesh settle (heartbeats flowing) before the clock starts.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let t0 = Instant::now();
    for v in 0..values as u64 {
        cluster.submit(1_000 + v).expect("cluster alive");
    }
    let completed = cluster
        .wait_for_commits(n * values, std::time::Duration::from_secs(120))
        .is_ok();
    // First submission to last commit, wall clock (the wait loop adds
    // at most its 2 ms poll period).
    let span = t0.elapsed().max(std::time::Duration::from_micros(1));
    let slots = cluster
        .committed_logs()
        .iter()
        .map(Vec::len)
        .min()
        .unwrap_or(0);
    let total = cluster.commits().len();
    cluster.shutdown();
    let span_ns = u64::try_from(span.as_nanos()).unwrap_or(u64::MAX).max(1);
    let secs = span_ns as f64 / 1e9;
    Row {
        n,
        f,
        transport,
        d_ms,
        values,
        completed,
        span_ns,
        slots_per_sec: slots as f64 / secs,
        commits_per_sec: total as f64 / secs,
    }
}

fn spawn_inproc(n: usize, f: usize, d_ms: u64) -> PipelineCluster<u64> {
    let params = params_for(n, f, d_ms);
    let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params).with_window(WINDOW);
    PipelineCluster::spawn(
        params,
        pipe_cfg,
        RuntimeConfig {
            seed: SEED,
            ..RuntimeConfig::default()
        },
    )
}

fn spawn_tcp(n: usize, f: usize, d_ms: u64) -> PipelineCluster<u64, TcpTransport<u64>> {
    let params = params_for(n, f, d_ms);
    let pipe_cfg = PipelineConfig::new(NodeId::new(0), &params).with_window(WINDOW);
    PipelineCluster::spawn_tcp(
        params,
        pipe_cfg,
        Duration::from_millis(5),
        WireConfig::from_seed(SEED),
    )
    .expect("loopback mesh")
}

fn print_row(r: &Row) {
    println!(
        "  n={:<3} f={:<3} {:<11} d={:<3}ms values={:<3} span={:>8.1}ms  {:>7.1} slots/s  {:>8.1} commits/s  {}",
        r.n,
        r.f,
        r.transport,
        r.d_ms,
        r.values,
        r.span_ns as f64 / 1e6,
        r.slots_per_sec,
        r.commits_per_sec,
        if r.completed { "✓" } else { "✗" },
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    if smoke {
        // CI smoke: a short stream must fully commit on both transports.
        println!("wire-throughput smoke (n=4):");
        let row = run_cell("in-process", 4, 1, 10, 8, spawn_inproc(4, 1, 10));
        print_row(&row);
        assert!(row.completed, "in-process stream must fully commit");
        let row = run_cell("tcp", 4, 1, 10, 8, spawn_tcp(4, 1, 10));
        print_row(&row);
        assert!(row.completed, "tcp stream must fully commit");
        println!("smoke passed: full stream committed on both transports ✓");
        return;
    }

    // `d` is the protocol's assumed bound on delivery *plus processing*
    // delay — it must hold for the deployment or the timing windows
    // (anchor freshness ≤ 4d, quorum windows 2d..5d) abort executions
    // and the proposer burns retry cycles. On a small host, 16 node
    // threads sharing cores push wave-processing latency past 10 ms, so
    // the n = 16 cell runs with the bound that actually holds there;
    // each row reports the d it was measured under.
    println!("wire-transport throughput grid (window={WINDOW}, wall clock):");
    let mut rows: Vec<Row> = Vec::new();
    for (n, f, d_ms, values) in [(7usize, 2usize, 10u64, 32usize), (16, 5, 40, 24)] {
        let row = run_cell("in-process", n, f, d_ms, values, spawn_inproc(n, f, d_ms));
        print_row(&row);
        assert!(row.completed, "n={n} in-process stream must fully commit");
        rows.push(row);
        let row = run_cell("tcp", n, f, d_ms, values, spawn_tcp(n, f, d_ms));
        print_row(&row);
        assert!(row.completed, "n={n} tcp stream must fully commit");
        rows.push(row);
    }

    let mut out = String::from("{\n  \"window\": ");
    let _ = write!(out, "{WINDOW},\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"n\": {}, \"f\": {}, \"transport\": \"{}\", \"d_ms\": {}, \"values\": {}, \"completed\": {}, \"span_ns\": {}, \"slots_per_sec\": {:.1}, \"commits_per_sec\": {:.1}}}{sep}",
            r.n, r.f, r.transport, r.d_ms, r.values, r.completed, r.span_ns, r.slots_per_sec, r.commits_per_sec,
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_wire.json", &out).expect("write BENCH_wire.json");
    println!("wrote BENCH_wire.json");
}
