//! Self-stabilization end to end: every node boots with adversarially
//! scrambled protocol state (fake anchors, bogus quorum evidence, future
//! timestamps) while the network storms (drops, corrupts, duplicates and
//! fabricates messages). After the storm, state decays on its own; a probe
//! agreement then passes the full property battery — the paper's
//! Corollary 5 bounds this recovery by Δ_stb = 2·Δ_reset.
//!
//! ```text
//! cargo run --release --example transient_recovery
//! ```

use ssbyz::harness::{checks, experiments, ScenarioBuilder, ScenarioConfig};
use ssbyz::simnet::StormConfig;
use ssbyz::{NodeId, RealTime};

fn main() {
    let cfg = ScenarioConfig::new(4, 1).with_seed(11);
    let params = cfg.params().expect("n > 3f");
    let storm_len = params.delta_rmv();
    let settle = params.delta_stb() - storm_len.min(params.delta_stb());
    let storm_end = RealTime::ZERO + storm_len;
    let initiate_off = storm_len + settle;

    println!("phase 1: transient failure");
    println!("  every node's engine state scrambled at boot");
    println!("  network storm until {storm_end:?} (drop 50%, corrupt 25%, dup 12.5%, spurious injection)");

    let mut builder = ScenarioBuilder::new(cfg)
        .storm(StormConfig::heavy(
            storm_end,
            params.d() * 4u64,
            params.d() / 4,
        ))
        .scrambled_general(initiate_off, 13);
    for _ in 1..4 {
        builder = builder.scrambled();
    }
    let mut scenario = builder.build();

    let t0 = scenario.sim().clock(NodeId::new(0)).real_of_local(
        scenario
            .sim()
            .clock(NodeId::new(0))
            .local_at(RealTime::ZERO)
            + initiate_off,
    );
    println!(
        "\nphase 2: coherence restored, state decaying (≤ Δ_stb = {})",
        params.delta_stb()
    );
    println!("phase 3: probe agreement initiated at {t0:?}");

    scenario.run_until(t0 + params.delta_agr() + params.d() * 40u64);
    let result = scenario.result();
    let probe = experiments::filter_window(
        &result,
        t0 - params.d() * 2u64,
        t0 + params.delta_agr() + params.d() * 10u64,
    );

    println!("\nprobe decisions:");
    for rec in probe.decides_for(NodeId::new(0)) {
        println!(
            "  {} decided {:?} at {:?}",
            rec.node, rec.value, rec.real_at
        );
    }
    let battery = checks::check_correct_general_run(
        &probe,
        NodeId::new(0),
        13,
        t0,
        experiments::slack(params.d()),
    );
    battery.assert_ok("post-recovery agreement");
    assert_eq!(
        probe.decides_for(NodeId::new(0)).len(),
        4,
        "all four scrambled nodes must decide the probe value"
    );
    assert!(
        result.metrics.dropped > 0 && result.metrics.injected > 0,
        "the storm must actually have disturbed the network"
    );
    println!(
        "\nstorm metrics: {} dropped, {} corrupted, {} spurious",
        result.metrics.dropped, result.metrics.corrupted, result.metrics.injected
    );
    println!("recovered from arbitrary state and passed the full property battery ✓");
}
