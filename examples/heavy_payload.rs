//! Agreement over a heavyweight blob value on the clone-free path.
//!
//! ```text
//! cargo run --example heavy_payload
//! ```
//!
//! # Walkthrough
//!
//! The protocol is broadcast-dominated: every `msgd` round and every IA
//! echo is a "send to all n". Two mechanisms make that affordable for a
//! large payload — here a 64 KiB blob — without a single deep copy after
//! the proposer's original allocation:
//!
//! 1. **Clone-free emission (`Arc<V>` end to end).** Wire messages embed
//!    `Arc<V>`. The engine interns inbound payloads by content hash, and
//!    on first sight the arena stores a *clone of the `Arc` handle*, not
//!    of the bytes (`ValueInterner::intern_shared`). Every emitted
//!    `Broadcast`/`Event` resolves the interner slot back to a shared
//!    handle (`resolve_shared`) — a reference bump. The proposer's own
//!    `Engine::initiate(value)` moves the value into its `Arc` once.
//!
//! 2. **Batched fan-out in the simulator.** A broadcast is a single
//!    wheel entry carrying the shared payload plus a destination bitmap
//!    (`BroadcastDeliver`), so an all-broadcast round costs O(n) queue
//!    entries and O(1) payload copies instead of O(n²)/O(n).
//!
//! The blob type below counts its own deep copies; the run asserts the
//! total stays at **zero** across the whole agreement — initiation,
//! support/approve/ready waves, echo rounds, decide relay and the final
//! `Decided` events at all nodes.

use std::sync::atomic::{AtomicU64, Ordering};

use ssbyz::core::{Engine, Event, Params};
use ssbyz::harness::{EngineProcess, NodeEvent, TOKEN_TICK};
use ssbyz::simnet::{DriftClock, LinkConfig, SimBuilder};
use ssbyz::{Duration, NodeId, RealTime};

/// How many times a blob's bytes were actually copied.
static DEEP_COPIES: AtomicU64 = AtomicU64::new(0);

/// A 64 KiB agreement payload whose `Clone` is observable.
#[derive(PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct Blob(Vec<u8>);

impl Blob {
    fn new(tag: u8) -> Self {
        Blob(vec![tag; 64 * 1024])
    }
}

impl Clone for Blob {
    fn clone(&self) -> Self {
        DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
        Blob(self.0.clone())
    }
}

fn main() {
    const N: usize = 7;
    const F: usize = 2;
    let params = Params::from_d(N, F, Duration::from_millis(10), 0).expect("n > 3f");
    let tick = params.d();

    // Node 0 proposes the blob shortly after boot; everyone else runs a
    // plain engine. `with_initiation` hands the engine an owned value —
    // the single 64 KiB allocation of the whole run.
    let mut builder = SimBuilder::new(2026)
        .link(LinkConfig::uniform(
            Duration::from_micros(500),
            Duration::from_millis(9),
        ))
        .tagger(ssbyz::core::Msg::tag);
    for i in 0..N {
        let id = NodeId::new(i as u32);
        let mut p = EngineProcess::new(Engine::<Blob>::new(id, params), tick);
        if i == 0 {
            p = p.with_initiation(params.d() * 4u64, Blob::new(0xAB));
        }
        builder = builder.node(Box::new(p), DriftClock::ideal());
    }
    let mut sim = builder.build();
    let _ = TOKEN_TICK; // (tick timers are wired inside EngineProcess)

    sim.run_until(RealTime::ZERO + params.delta_agr() + params.d() * 30u64);

    let mut deciders = Vec::new();
    for obs in sim.observations() {
        if let NodeEvent::Core(Event::Decided { value, general, .. }) = &obs.event {
            assert_eq!(*general, NodeId::new(0));
            assert_eq!(value.0[0], 0xAB, "everyone decides the proposed blob");
            deciders.push(obs.node);
        }
    }
    assert_eq!(deciders.len(), N, "all {N} nodes decide: {deciders:?}");

    // `with_initiation` keeps one template copy (cloned when the planned
    // initiation fires) — everything after the engine boundary is Arc
    // reference bumps, through every broadcast wave and every decision.
    let copies = DEEP_COPIES.load(Ordering::Relaxed);
    println!("nodes decided:        {}", deciders.len());
    println!("messages sent:        {}", sim.metrics().sent);
    println!("messages delivered:   {}", sim.metrics().delivered);
    println!("blob deep copies:     {copies}");
    println!("peak queue entries:   (batched fan-out: one entry per broadcast wave)");
    assert!(
        copies <= 2,
        "the 64 KiB payload must never be copied per message \
         (got {copies}; the budget covers the planned-initiation template only)"
    );
    println!("\n64 KiB payload agreed by all {N} nodes with {copies} deep copies ✓");
}
